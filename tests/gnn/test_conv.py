"""Graph convolution layers: shapes, masking, equivariance, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import CONV_TYPES, GATConv, GINConv
from repro.graph import Batch
from repro.tensor import Tensor

from _helpers import make_path, make_triangle


@pytest.mark.parametrize("conv_name", sorted(CONV_TYPES))
def test_forward_shape(conv_name, rng, triangle):
    conv = CONV_TYPES[conv_name](4, 8, rng=rng)
    out = conv(Tensor(triangle.x), triangle.edge_index, 3)
    assert out.shape == (3, 8)


@pytest.mark.parametrize("conv_name", sorted(CONV_TYPES))
def test_gradients_reach_parameters(conv_name, rng, triangle):
    conv = CONV_TYPES[conv_name](4, 8, rng=rng)
    conv(Tensor(triangle.x), triangle.edge_index, 3).sum().backward()
    grads = [p.grad for p in conv.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


@pytest.mark.parametrize("conv_name", sorted(CONV_TYPES))
def test_permutation_equivariance(conv_name, rng):
    """Relabelling nodes permutes the output rows identically."""
    g = make_path(rng, n=5)
    conv = CONV_TYPES[conv_name](4, 8, rng=np.random.default_rng(7))
    conv.eval()
    out = conv(Tensor(g.x), g.edge_index, 5).data
    perm = np.random.default_rng(3).permutation(5)
    inverse = np.argsort(perm)
    permuted_edges = inverse[g.edge_index]
    out_permuted = conv(Tensor(g.x[perm]), permuted_edges, 5).data
    assert np.allclose(out_permuted, out[perm], atol=1e-8)


def test_gin_mask_zeroes_masked_node(rng, triangle):
    conv = GINConv(4, 8, rng=rng, batch_norm=False)
    mask = Tensor(np.array([1.0, 0.0, 1.0]))
    out = conv(Tensor(triangle.x), triangle.edge_index, 3, node_weight=mask)
    assert np.allclose(out.data[1], 0.0)


def test_gin_mask_blocks_messages(rng):
    """Masking node 1 of a path makes node 0 see no neighbours — its output
    must equal the output with node 1's features zeroed entirely."""
    g = make_path(rng, n=3)
    conv = GINConv(4, 8, rng=np.random.default_rng(5), batch_norm=False)
    mask = Tensor(np.array([1.0, 0.0, 1.0]))
    masked = conv(Tensor(g.x), g.edge_index, 3, node_weight=mask).data
    isolated = g.x.copy()
    isolated[1] = 0.0
    no_edges = np.zeros((2, 0), dtype=np.int64)
    expected = conv(Tensor(isolated), no_edges, 3).data
    assert np.allclose(masked[0], expected[0], atol=1e-10)


def test_gin_aggregates_neighbour_sum(rng, triangle):
    """With ε=0 and identity-ish MLP inputs, GIN input combine is x + Σ x_j."""
    conv = GINConv(4, 4, rng=rng, batch_norm=False)
    x = Tensor(triangle.x)
    # Inspect the combined pre-MLP value by monkey-testing the formula.
    src, dst = triangle.edge_index
    expected_combined = triangle.x.copy()
    for s, d in zip(src, dst):
        expected_combined[d] += triangle.x[s]
    out = conv(x, triangle.edge_index, 3)
    direct = conv.mlp(Tensor(expected_combined))
    assert np.allclose(out.data, direct.data, atol=1e-10)


def test_gcn_self_loop_only_graph(rng):
    conv = CONV_TYPES["gcn"](4, 6, rng=rng)
    x = rng.normal(size=(3, 4))
    out = conv(Tensor(x), np.zeros((2, 0), dtype=np.int64), 3)
    assert out.shape == (3, 6)
    assert np.isfinite(out.data).all()


def test_sage_isolated_node_gets_zero_neighbour_term(rng):
    conv = CONV_TYPES["sage"](4, 6, rng=rng)
    x = rng.normal(size=(2, 4))
    out = conv(Tensor(x), np.zeros((2, 0), dtype=np.int64), 2)
    expected = np.maximum(x @ conv.self_linear.weight.data
                          + conv.self_linear.bias.data
                          + conv.neigh_linear.bias.data, 0.0)
    assert np.allclose(out.data, expected)


def test_gat_attention_cached_and_normalised(rng, triangle):
    conv = GATConv(4, 8, rng=rng)
    conv(Tensor(triangle.x), triangle.edge_index, 3)
    assert conv.last_attention is not None
    dst = conv.last_edge_index[1]
    for node in range(3):
        assert np.isclose(conv.last_attention[dst == node].sum(), 1.0)


def test_gat_multihead_shape(rng, triangle):
    conv = GATConv(4, 8, rng=rng, heads=3)
    out = conv(Tensor(triangle.x), triangle.edge_index, 3)
    assert out.shape == (3, 8)


def test_batched_equals_individual(rng):
    """Disjoint batching must not leak information across graphs."""
    a, b = make_triangle(rng), make_path(rng, n=4)
    conv = GINConv(4, 8, rng=np.random.default_rng(11), batch_norm=False)
    batch = Batch([a, b])
    together = conv(Tensor(batch.x), batch.edge_index, batch.num_nodes).data
    alone_a = conv(Tensor(a.x), a.edge_index, 3).data
    alone_b = conv(Tensor(b.x), b.edge_index, 4).data
    assert np.allclose(together[:3], alone_a, atol=1e-10)
    assert np.allclose(together[3:], alone_b, atol=1e-10)


# ----------------------------------------------------------------------
# Workspace fast path (PR 9): cached plans must not change numbers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("conv_name", sorted(CONV_TYPES))
def test_workspace_matches_planless(conv_name, rng):
    from repro.graph import MessagePassingWorkspace

    batch = Batch([make_triangle(rng), make_path(rng, n=5)])
    workspace = MessagePassingWorkspace(batch.edge_index, batch.num_nodes)
    conv = CONV_TYPES[conv_name](4, 8, rng=np.random.default_rng(11))
    conv.eval()

    x_ws = Tensor(batch.x, requires_grad=True)
    x_plain = Tensor(batch.x, requires_grad=True)
    out_ws = conv(x_ws, batch.edge_index, batch.num_nodes,
                  workspace=workspace)
    out_plain = conv(x_plain, batch.edge_index, batch.num_nodes)
    assert np.array_equal(out_ws.data, out_plain.data)
    out_ws.sum().backward()
    out_plain.sum().backward()
    assert np.array_equal(x_ws.grad, x_plain.grad)
    # Workspace reuse across calls (different features, same topology).
    again = conv(Tensor(batch.x * 2.0), batch.edge_index, batch.num_nodes,
                 workspace=workspace)
    assert again.shape == out_ws.shape


def test_batch_workspace_is_cached_and_reused(rng):
    batch = Batch([make_triangle(rng), make_path(rng, n=4)])
    first = batch.workspace()
    assert batch.workspace() is first
    plan = first.plan("dst")
    assert first.plan("dst") is plan
    assert first.pool_plan() is first.pool_plan()
    assert first.pool_plan().num_segments == batch.num_graphs


def test_encoder_batched_forward_matches_manual_edges(rng):
    """Encoder forward (which now threads Batch.workspace) must equal the
    workspace-free node_representations path bit for bit."""
    from repro.gnn import GNNEncoder

    batch = Batch([make_triangle(rng), make_path(rng, n=6)])
    encoder = GNNEncoder(4, 8, 2, rng=np.random.default_rng(5))
    encoder.eval()
    via_batch = encoder(batch).data
    manual = encoder.node_representations(
        Tensor(batch.x), batch.edge_index, batch.num_nodes).data
    assert np.array_equal(via_batch, manual)
