"""Hypothesis property tests on GNN encoder invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GNNEncoder
from repro.graph import Batch

from _helpers import make_path, make_triangle


def _encoder(seed: int, conv: str = "gin") -> GNNEncoder:
    encoder = GNNEncoder(4, 8, 2, rng=np.random.default_rng(seed), conv=conv)
    encoder.eval()
    return encoder


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(2, 7), min_size=2, max_size=5),
       st.integers(0, 99))
def test_batch_order_invariance(sizes, seed):
    """Reordering graphs in a batch permutes the pooled rows identically."""
    rng = np.random.default_rng(seed)
    graphs = [make_path(rng, n=n) for n in sizes]
    encoder = _encoder(seed)
    forward = encoder.graph_representations(Batch(graphs)).data
    reversed_out = encoder.graph_representations(Batch(graphs[::-1])).data
    assert np.allclose(forward, reversed_out[::-1], atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 8), st.integers(0, 99))
def test_duplicated_graph_identical_rows(n, seed):
    rng = np.random.default_rng(seed)
    graph = make_path(rng, n=n)
    encoder = _encoder(seed)
    out = encoder.graph_representations(Batch([graph, graph])).data
    assert np.allclose(out[0], out[1], atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 99), st.sampled_from(["gin", "gcn", "sage", "gat"]))
def test_node_relabelling_invariance_of_pooled_output(seed, conv):
    """Graph-level representations are invariant to node relabelling."""
    rng = np.random.default_rng(seed)
    graph = make_path(rng, n=6)
    perm = rng.permutation(6)
    inverse = np.argsort(perm)
    relabelled = type(graph)(graph.x[perm], inverse[graph.edge_index],
                             graph.y)
    encoder = _encoder(seed, conv)
    a = encoder.graph_representations(Batch([graph])).data
    b = encoder.graph_representations(Batch([relabelled])).data
    assert np.allclose(a, b, atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 99))
def test_zero_node_weight_zeroes_sum_pooled_output(seed):
    rng = np.random.default_rng(seed)
    graph = make_triangle(rng)
    encoder = GNNEncoder(4, 8, 2, rng=np.random.default_rng(seed),
                         conv="gin", batch_norm=False)
    encoder.eval()
    from repro.tensor import Tensor
    out = encoder.graph_representations(
        Batch([graph]), node_weight=Tensor(np.zeros(3)))
    assert np.allclose(out.data, 0.0, atol=1e-12)
