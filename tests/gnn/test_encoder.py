"""GNNEncoder / ProjectionHead behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GNNEncoder, ProjectionHead
from repro.graph import Batch
from repro.tensor import Tensor

from _helpers import make_path, make_triangle


@pytest.mark.parametrize("conv", ["gin", "gcn", "sage", "gat"])
def test_graph_representations_shape(conv, rng):
    encoder = GNNEncoder(4, 16, 3, rng=rng, conv=conv)
    batch = Batch([make_triangle(rng), make_path(rng)])
    out = encoder.graph_representations(batch)
    assert out.shape == (2, 16)


def test_jk_cat_out_dim(rng):
    encoder = GNNEncoder(4, 8, 3, rng=rng, jk="cat")
    assert encoder.out_dim == 24
    batch = Batch([make_triangle(rng)])
    assert encoder(batch).shape == (3, 24)


def test_invalid_options_rejected(rng):
    with pytest.raises(ValueError):
        GNNEncoder(4, 8, 2, rng=rng, conv="transformer")
    with pytest.raises(ValueError):
        GNNEncoder(4, 8, 2, rng=rng, pooling="attention")
    with pytest.raises(ValueError):
        GNNEncoder(4, 8, 2, rng=rng, jk="sum")


def test_pool_weights_override(rng):
    encoder = GNNEncoder(4, 8, 2, rng=rng)
    batch = Batch([make_triangle(rng)])
    zero_weights = Tensor(np.zeros(3))
    out = encoder.graph_representations(batch, pool_weights=zero_weights)
    assert np.allclose(out.data, 0.0)


def test_node_weight_threading(rng):
    encoder = GNNEncoder(4, 8, 2, rng=rng, batch_norm=False)
    batch = Batch([make_triangle(rng)])
    mask = Tensor(np.array([1.0, 0.0, 1.0]))
    out = encoder(batch, node_weight=mask)
    assert np.allclose(out.data[1], 0.0)


def test_eval_mode_batch_independence(rng):
    """In eval mode, a graph's encoding must not depend on its batch mates."""
    encoder = GNNEncoder(4, 8, 2, rng=rng)
    encoder.eval()
    a, b = make_triangle(rng), make_path(rng, n=5)
    together = encoder.graph_representations(Batch([a, b])).data
    alone = encoder.graph_representations(Batch([a])).data
    assert np.allclose(together[0], alone[0], atol=1e-8)


def test_mean_pooling_option(rng):
    encoder = GNNEncoder(4, 8, 2, rng=rng, pooling="mean")
    batch = Batch([make_triangle(rng)])
    nodes = encoder(batch)
    pooled = encoder.graph_representations(batch)
    assert np.allclose(pooled.data[0], nodes.data.mean(axis=0))


def test_projection_head_shapes(rng):
    head = ProjectionHead(16, 8, rng=rng)
    out = head(Tensor(rng.normal(size=(5, 16))))
    assert out.shape == (5, 8)
    default = ProjectionHead(16, rng=rng)
    assert default(Tensor(rng.normal(size=(2, 16)))).shape == (2, 16)


def test_batch_norm_flag_removes_bn(rng):
    with_bn = GNNEncoder(4, 8, 2, rng=np.random.default_rng(0), conv="gin")
    without = GNNEncoder(4, 8, 2, rng=np.random.default_rng(0), conv="gin",
                         batch_norm=False)
    assert without.num_parameters() < with_bn.num_parameters()
