"""Every baseline method: trains, produces finite embeddings, learns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import NEURAL_METHODS, make_method
from repro.data import load_dataset
from repro.eval import embed_dataset
from repro.graph import Batch


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("MUTAG", seed=0, scale=0.15)


@pytest.mark.parametrize("name", sorted(NEURAL_METHODS))
def test_pretrain_and_embed(name, dataset):
    model = make_method(name, dataset.num_features, seed=0)
    history = model.pretrain(dataset.graphs, epochs=1)
    if name != "No Pre-Train":
        assert len(history) == 1
        assert np.isfinite(list(history)[-1] if isinstance(history[-1], float)
                           else history[-1]["loss"])
    embeddings = embed_dataset(model.encoder, dataset)
    assert embeddings.shape == (len(dataset), 32)
    assert np.isfinite(embeddings).all()


@pytest.mark.parametrize("name", ["GraphCL", "InfoGraph", "GAE", "Infomax",
                                  "AttrMasking", "ContextPred"])
def test_loss_decreases_over_epochs(name, dataset):
    model = make_method(name, dataset.num_features, seed=0)
    history = model.pretrain(dataset.graphs, epochs=5)
    assert history[-1] < history[0]


def test_unknown_method_rejected(dataset):
    with pytest.raises(KeyError):
        make_method("SuperGCL", dataset.num_features)


def test_sgcl_adapter_rejects_unknown_options(dataset):
    with pytest.raises(TypeError):
        make_method("SGCL", dataset.num_features, bogus_option=1)


def test_sgcl_ablation_variants_use_right_config(dataset):
    wo_vg = make_method("SGCL w/o VG", dataset.num_features)
    assert wo_vg.trainer.config.augmentation == "random"
    wo_lga = make_method("SGCL w/o LGA", dataset.num_features)
    assert wo_lga.trainer.config.augmentation == "learnable"
    wo_srl = make_method("SGCL w/o SRL", dataset.num_features)
    assert not wo_srl.trainer.config.use_semantic_readout
    wo_lc = make_method("SGCL w/o Lc", dataset.num_features)
    assert wo_lc.trainer.config.lambda_c == 0.0
    wo_lw = make_method("SGCL w/o LW", dataset.num_features)
    assert wo_lw.trainer.config.lambda_w == 0.0


def test_sgcl_variant_allows_overrides(dataset):
    model = make_method("SGCL", dataset.num_features, rho=0.7, epochs=2)
    assert model.trainer.config.rho == 0.7


def test_joao_updates_augmentation_distribution(dataset):
    model = make_method("JOAOv2", dataset.num_features, seed=0)
    before = model.aug_probs.copy()
    model.pretrain(dataset.graphs, epochs=2)
    assert not np.allclose(before, model.aug_probs)
    assert np.isclose(model.aug_probs.sum(), 1.0)


def test_graphcl_restricted_pool(dataset):
    model = make_method("GraphCL", dataset.num_features,
                        aug_names=("node_drop",), seed=0)
    model.pretrain(dataset.graphs, epochs=1)
    with pytest.raises(ValueError):
        make_method("GraphCL", dataset.num_features, aug_names=("bad",))


def test_adgcl_requires_gin(dataset):
    model = make_method("AD-GCL", dataset.num_features, conv="gcn", seed=0)
    with pytest.raises(ValueError):
        model.pretrain(dataset.graphs, epochs=1)


def test_adgcl_augmenter_not_in_encoder_optimizer(dataset):
    model = make_method("AD-GCL", dataset.num_features, seed=0)
    augmenter = {id(p) for p in model.edge_scorer.parameters()}
    main = {id(p) for p in model.optimizer.params}
    assert not augmenter & main


def test_simgrace_restores_weights_after_perturbation(dataset):
    model = make_method("SimGRACE", dataset.num_features, seed=0)
    before = dict(model.encoder.named_parameters())
    before = {k: v.data.copy() for k, v in before.items()}
    model.step(Batch(dataset.graphs[:4]))
    after = dict(model.encoder.named_parameters())
    # Trainable parameters are restored after the perturbation; BatchNorm
    # running statistics legitimately advance (normal training forward).
    assert all(np.allclose(before[k], after[k].data) for k in before)


def test_rgcl_node_probabilities_in_unit_interval(dataset):
    model = make_method("RGCL", dataset.num_features, seed=0)
    batch = Batch(dataset.graphs[:4])
    probabilities = model.node_probabilities(batch).data
    assert probabilities.shape == (batch.num_nodes,)
    assert ((probabilities >= 0) & (probabilities <= 1)).all()


def test_autogcl_views_are_valid(dataset):
    model = make_method("AutoGCL", dataset.num_features, seed=0)
    batch = Batch(dataset.graphs[:4])
    probs = model.generators[0].probabilities(batch)
    view, soft = model._materialise_view(batch, probs)
    assert view.num_graphs == 4
    assert len(soft) == view.num_nodes


def test_no_pretrain_is_noop(dataset):
    model = make_method("No Pre-Train", dataset.num_features, seed=0)
    before = model.encoder.state_dict()
    model.pretrain(dataset.graphs, epochs=5)
    after = model.encoder.state_dict()
    assert all(np.allclose(before[k], after[k]) for k in before)
