"""Graph kernels: hand-computed checks and separation properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    dgk_features,
    graphlet_features,
    kernel_feature_map,
    wl_features,
)
from repro.graph import Graph

from _helpers import make_path, make_triangle


def _labelled(edges, labels, n):
    arr = np.array(edges)
    edge_index = np.concatenate([arr, arr[:, ::-1]], axis=0).T
    x = np.zeros((n, int(max(labels)) + 1))
    x[np.arange(n), labels] = 1.0
    return Graph(x, edge_index)


def test_graphlet_triangle_vs_path(rng):
    triangle = make_triangle(rng)
    path = make_path(rng, n=3)
    features = graphlet_features([triangle, path])
    # Triangle: 1 triangle, 0 open wedges. Path: 1 open wedge, 0 triangles.
    assert features[0, 1] == pytest.approx(1.0)  # triangle fraction
    assert features[0, 0] == pytest.approx(0.0)
    assert features[1, 0] == pytest.approx(1.0)  # wedge fraction
    assert features[1, 1] == pytest.approx(0.0)


def test_graphlet_features_finite_on_edgeless(rng):
    g = Graph(rng.normal(size=(3, 2)), np.zeros((2, 0)))
    features = graphlet_features([g])
    assert np.isfinite(features).all()


def test_wl_identical_graphs_identical_features(rng):
    g = make_path(rng, n=5)
    h = make_path(rng, n=5)
    h.x = g.x.copy()
    features = wl_features([g, h])
    assert np.allclose(features[0], features[1])


def test_wl_distinguishes_nonisomorphic():
    # Star vs path on 4 nodes: different refined-label multisets.
    star = _labelled([(0, 1), (0, 2), (0, 3)], [0] * 4, 4)
    path = _labelled([(0, 1), (1, 2), (2, 3)], [0] * 4, 4)
    features = wl_features([star, path], iterations=2)
    assert not np.allclose(features[0], features[1])


def test_wl_limitation_c6_vs_two_triangles():
    """1-WL famously cannot distinguish C6 from two disjoint C3s — document
    the known expressiveness ceiling of the subtree kernel."""
    c6 = _labelled([(i, (i + 1) % 6) for i in range(6)], [0] * 6, 6)
    two_c3 = _labelled([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
                       [0] * 6, 6)
    features = wl_features([c6, two_c3], iterations=3)
    assert np.allclose(features[0], features[1])


def test_wl_respects_initial_labels():
    a = _labelled([(0, 1)], [0, 0], 2)
    b = _labelled([(0, 1)], [0, 1], 2)
    features = wl_features([a, b], iterations=1)
    assert not np.allclose(features[0], features[1])


def test_wl_rows_unit_norm(rng):
    features = wl_features([make_path(rng, n=4), make_triangle(rng)])
    assert np.allclose(np.linalg.norm(features, axis=1), 1.0)


def test_dgk_shapes_and_similarity_structure(rng):
    graphs = [make_path(rng, n=5) for _ in range(3)] + \
        [make_triangle(rng) for _ in range(3)]
    for g in graphs:
        g.x = np.ones((g.num_nodes, 1))
    features = dgk_features(graphs, embedding_dim=8)
    assert features.shape[0] == 6
    sims = features @ features.T
    # Same-shape graphs must be more similar than cross-shape pairs.
    within = (sims[0, 1] + sims[3, 4]) / 2
    across = sims[0, 3]
    assert within > across


def test_kernel_feature_map_registry(rng):
    graphs = [make_triangle(rng)]
    for name in ("GL", "WL", "DGK"):
        features = kernel_feature_map(name, graphs)
        assert features.shape[0] == 1
    with pytest.raises(KeyError):
        kernel_feature_map("RBF", graphs)
