"""Segment/gather kernels: correctness vs naive loops, gradients, edge cases."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    Tensor,
    gather,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)

from _helpers import numerical_gradient


def naive_segment_sum(values, index, num_segments):
    out = np.zeros((num_segments,) + values.shape[1:])
    for i, seg in enumerate(index):
        out[seg] += values[i]
    return out


def test_segment_sum_matches_naive(rng):
    values = rng.normal(size=(10, 3))
    index = rng.integers(4, size=10)
    out = segment_sum(Tensor(values), index, 4)
    assert np.allclose(out.data, naive_segment_sum(values, index, 4))


def test_segment_sum_empty_segment_is_zero(rng):
    values = rng.normal(size=(3, 2))
    index = np.array([0, 0, 2])
    out = segment_sum(Tensor(values), index, 4)
    assert np.allclose(out.data[1], 0.0)
    assert np.allclose(out.data[3], 0.0)


def test_segment_sum_gradient(rng):
    values0 = rng.normal(size=(6, 2))
    index = np.array([0, 1, 0, 2, 1, 0])

    def fn(arr):
        return float((naive_segment_sum(arr, index, 3) ** 2).sum())

    values = Tensor(values0.copy(), requires_grad=True)
    (segment_sum(values, index, 3) ** 2.0).sum().backward()
    numeric = numerical_gradient(fn, values0.copy())
    assert np.allclose(values.grad, numeric, atol=1e-6)


def test_segment_mean_matches_naive(rng):
    values = rng.normal(size=(8, 2))
    index = np.array([0, 0, 1, 1, 1, 2, 2, 2])
    out = segment_mean(Tensor(values), index, 3)
    for seg in range(3):
        assert np.allclose(out.data[seg], values[index == seg].mean(axis=0))


def test_segment_mean_empty_segment(rng):
    out = segment_mean(Tensor(rng.normal(size=(2, 2))), np.array([0, 0]), 2)
    assert np.allclose(out.data[1], 0.0)


def test_segment_max_matches_naive(rng):
    values = rng.normal(size=(8, 2))
    index = np.array([0, 0, 1, 1, 1, 2, 2, 2])
    out = segment_max(Tensor(values), index, 3)
    for seg in range(3):
        assert np.allclose(out.data[seg], values[index == seg].max(axis=0))


def test_segment_max_empty_fill():
    out = segment_max(Tensor(np.ones((1, 2))), np.array([0]), 3, fill=-7.0)
    assert np.allclose(out.data[1], -7.0)


def test_segment_max_gradient_routes_to_argmax():
    values = Tensor(np.array([[1.0], [5.0], [2.0]]), requires_grad=True)
    index = np.array([0, 0, 0])
    segment_max(values, index, 1).sum().backward()
    assert np.allclose(values.grad, [[0.0], [1.0], [0.0]])


def test_segment_max_gradient_splits_ties():
    values = Tensor(np.array([[3.0], [3.0]]), requires_grad=True)
    segment_max(values, np.array([0, 0]), 1).sum().backward()
    assert np.allclose(values.grad, [[0.5], [0.5]])


def test_gather_and_gradient(rng):
    values0 = rng.normal(size=(4, 2))
    index = np.array([1, 1, 3])
    values = Tensor(values0.copy(), requires_grad=True)
    out = gather(values, index)
    assert np.allclose(out.data, values0[index])
    out.sum().backward()
    expected = np.zeros_like(values0)
    np.add.at(expected, index, 1.0)
    assert np.allclose(values.grad, expected)


def test_gather_rejects_2d_index(rng):
    with pytest.raises(ValueError):
        gather(Tensor(rng.normal(size=(3, 2))), np.zeros((2, 2), dtype=int))


def test_segment_count():
    assert segment_count(np.array([0, 0, 2]), 4).tolist() == [2, 0, 1, 0]


def test_segment_softmax_sums_to_one_per_segment(rng):
    values = Tensor(rng.normal(size=12))
    index = np.repeat(np.arange(3), 4)
    out = segment_softmax(values, index, 3)
    for seg in range(3):
        assert np.isclose(out.data[index == seg].sum(), 1.0)


def test_segment_softmax_matches_dense_softmax(rng):
    values = rng.normal(size=4)
    out = segment_softmax(Tensor(values), np.zeros(4, dtype=int), 1)
    expected = np.exp(values - values.max())
    expected /= expected.sum()
    assert np.allclose(out.data, expected, atol=1e-12)


def test_segment_softmax_gradient(rng):
    values0 = rng.normal(size=6)
    index = np.array([0, 0, 0, 1, 1, 1])
    weights = rng.normal(size=6)

    def fn(arr):
        out = np.zeros(6)
        for seg in range(2):
            mask = index == seg
            e = np.exp(arr[mask] - arr[mask].max())
            out[mask] = e / e.sum()
        return float((out * weights).sum())

    values = Tensor(values0.copy(), requires_grad=True)
    (segment_softmax(values, index, 2) * Tensor(weights)).sum().backward()
    numeric = numerical_gradient(fn, values0.copy())
    assert np.allclose(values.grad, numeric, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(1, 6), st.integers(0, 999))
def test_segment_sum_then_total_equals_full_sum(n, segments, seed):
    """Property: summing the segment sums recovers the total sum."""
    local = np.random.default_rng(seed)
    values = local.normal(size=(n, 2))
    index = local.integers(segments, size=n)
    out = segment_sum(Tensor(values), index, segments)
    assert np.allclose(out.data.sum(axis=0), values.sum(axis=0))


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 20), st.integers(0, 999))
def test_gather_inverse_of_segment_one_hot(n, seed):
    """Property: gather(segment_sum(x, id, n), id) == x when ids are unique."""
    local = np.random.default_rng(seed)
    values = local.normal(size=(n, 3))
    index = local.permutation(n)
    out = gather(segment_sum(Tensor(values), index, n), index)
    assert np.allclose(out.data, values)


# ----------------------------------------------------------------------
# segment_softmax normalisation + ScatterPlan fast path (PR 9)
# ----------------------------------------------------------------------
def test_segment_softmax_rows_sum_to_one(rng):
    values = rng.normal(size=12) * 10.0
    index = rng.integers(4, size=12)
    out = segment_softmax(Tensor(values), index, 4)
    sums = np.zeros(4)
    np.add.at(sums, index, out.data)
    occupied = np.bincount(index, minlength=4) > 0
    # Exactly 1, not 1 - epsilon: the old +1e-16 denominator made
    # attention rows sum to slightly less than one.
    assert np.allclose(sums[occupied], 1.0, rtol=0, atol=1e-12)


def test_scatter_plan_matches_planless(rng):
    from repro.tensor import ScatterPlan

    values = rng.normal(size=(14, 3))
    scalars = rng.normal(size=14)
    index = rng.integers(5, size=14)
    plan = ScatterPlan(index, 5)

    for make in (
        lambda v, p: segment_sum(v, index, 5, plan=p),
        lambda v, p: segment_mean(v, index, 5, plan=p),
        lambda v, p: segment_max(v, index, 5, plan=p),
    ):
        for payload in (values, scalars):
            with_plan = Tensor(payload, requires_grad=True)
            without = Tensor(payload, requires_grad=True)
            out_plan = make(with_plan, plan)
            out_none = make(without, None)
            assert np.array_equal(out_plan.data, out_none.data)
            out_plan.sum().backward()
            out_none.sum().backward()
            assert np.array_equal(with_plan.grad, without.grad)


def test_scatter_plan_gather_and_softmax_match(rng):
    from repro.tensor import ScatterPlan, gather as g

    node_values = rng.normal(size=(5, 2))
    edge_values = rng.normal(size=14)
    index = rng.integers(5, size=14)
    plan = ScatterPlan(index, 5)

    a = Tensor(node_values, requires_grad=True)
    b = Tensor(node_values, requires_grad=True)
    out_plan, out_none = g(a, index, plan=plan), g(b, index)
    assert np.array_equal(out_plan.data, out_none.data)
    (out_plan * out_plan).sum().backward()
    (out_none * out_none).sum().backward()
    assert np.array_equal(a.grad, b.grad)

    c = Tensor(edge_values, requires_grad=True)
    d = Tensor(edge_values, requires_grad=True)
    soft_plan = segment_softmax(c, index, 5, plan=plan)
    soft_none = segment_softmax(d, index, 5)
    assert np.array_equal(soft_plan.data, soft_none.data)
    (soft_plan * Tensor(edge_values)).sum().backward()
    (soft_none * Tensor(edge_values)).sum().backward()
    assert np.array_equal(c.grad, d.grad)


def test_scatter_plan_rejects_out_of_range_index(rng):
    from repro.tensor import ScatterPlan

    plan = ScatterPlan(np.array([0, 1, 5]), 3)  # 5 >= num_segments
    with pytest.raises(IndexError):
        plan.scatter_sum(np.ones(3))
    with pytest.raises(IndexError):
        segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1, 5]), 3)
