"""Hypothesis property tests on autodiff invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor


def _random_matrix(seed: int, rows: int, cols: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, cols))


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 999),
       st.floats(-3, 3), st.floats(-3, 3))
def test_gradient_is_linear_in_seed(rows, cols, seed, a, b):
    """∇(a·f + b·g) == a·∇f + b·∇g for scalar outputs."""
    data = _random_matrix(seed, rows, cols)

    def grad_of(weight_f, weight_g):
        x = Tensor(data.copy(), requires_grad=True)
        out = weight_f * (x * x).sum() + weight_g * x.sum()
        out.backward()
        return x.grad

    combined = grad_of(a, b)
    separate = a * grad_of(1.0, 0.0) + b * grad_of(0.0, 1.0)
    assert np.allclose(combined, separate, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 999))
def test_sum_then_mean_consistency(rows, cols, seed):
    data = _random_matrix(seed, rows, cols)
    x = Tensor(data)
    assert np.isclose(x.mean().item(), x.sum().item() / data.size)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(0, 999), st.floats(-5, 5))
def test_softmax_shift_invariance(n, seed, shift):
    data = np.random.default_rng(seed).normal(size=(3, n))
    a = Tensor(data).softmax(axis=1).data
    b = (Tensor(data) + shift).softmax(axis=1).data
    assert np.allclose(a, b, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 999))
def test_double_transpose_identity(rows, cols, seed):
    data = _random_matrix(seed, rows, cols)
    x = Tensor(data, requires_grad=True)
    (x.T.T * 1.0).sum().backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 999))
def test_matmul_associativity_of_values(n, seed):
    rng = np.random.default_rng(seed)
    a, b, c = (Tensor(rng.normal(size=(n, n))) for _ in range(3))
    left = ((a @ b) @ c).data
    right = (a @ (b @ c)).data
    assert np.allclose(left, right, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(0, 999))
def test_relu_plus_negation_covers_input(n, seed):
    """relu(x) − relu(−x) == x."""
    data = np.random.default_rng(seed).normal(size=n)
    x = Tensor(data)
    reconstructed = x.relu() - (-x).relu()
    assert np.allclose(reconstructed.data, data, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(0, 999))
def test_sigmoid_symmetry(n, seed):
    """σ(x) + σ(−x) == 1."""
    data = np.random.default_rng(seed).normal(size=n)
    total = Tensor(data).sigmoid() + Tensor(-data).sigmoid()
    assert np.allclose(total.data, 1.0, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(0, 999))
def test_chain_rule_through_composition(rows, cols, seed):
    """Gradient of h(g(x)) equals manually chained Jacobians for
    elementwise g, h."""
    data = np.abs(_random_matrix(seed, rows, cols)) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    (x.log().exp()).sum().backward()  # identity composition
    assert np.allclose(x.grad, 1.0, atol=1e-9)
