"""Gradient checks and semantics of the autodiff primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, concatenate, no_grad, stack, where

from _helpers import numerical_gradient


def check_gradient(build, shape, rng, atol=1e-6):
    """Compare autodiff gradient of ``build(Tensor)`` with finite differences."""
    x0 = rng.normal(size=shape)
    x = Tensor(x0.copy(), requires_grad=True)
    build(x).backward()
    numeric = numerical_gradient(lambda arr: float(build(Tensor(arr)).data),
                                 x0.copy())
    assert np.allclose(x.grad, numeric, atol=atol), \
        f"max err {np.abs(x.grad - numeric).max()}"


UNARY_OPS = {
    "exp": lambda x: x.exp().sum(),
    "log_shifted": lambda x: (x * x + 1.0).log().sum(),
    "sqrt_shifted": lambda x: (x * x + 1.0).sqrt().sum(),
    "sigmoid": lambda x: x.sigmoid().sum(),
    "tanh": lambda x: x.tanh().sum(),
    "softplus": lambda x: x.softplus().sum(),
    "relu": lambda x: (x + 0.05).relu().sum(),
    "leaky_relu": lambda x: (x + 0.05).leaky_relu(0.1).sum(),
    "abs": lambda x: (x + 0.05).abs().sum(),
    "neg": lambda x: (-x).sum(),
    "pow3": lambda x: (x ** 3.0).sum(),
    "mean": lambda x: x.mean(),
    "mean_axis": lambda x: (x.mean(axis=0) ** 2.0).sum(),
    "sum_axis_keep": lambda x: (x.sum(axis=1, keepdims=True) ** 2.0).sum(),
    "max_axis": lambda x: x.max(axis=1).sum(),
    "norm": lambda x: x.norm(),
    "log_softmax": lambda x: (x.log_softmax(axis=1) * 0.5).sum(),
    "softmax": lambda x: (x.softmax(axis=1) ** 2.0).sum(),
    "clip": lambda x: x.clip(-0.5, 0.5).sum(),
    "transpose": lambda x: (x.T @ x).sum(),
    "reshape": lambda x: (x.reshape(-1) ** 2.0).sum(),
    "getitem_row": lambda x: (x[1] ** 2.0).sum(),
}


@pytest.mark.parametrize("name", sorted(UNARY_OPS))
def test_unary_gradients(name, rng):
    check_gradient(UNARY_OPS[name], (3, 4), rng)


BINARY_OPS = {
    "add": lambda a, b: (a + b).sum(),
    "sub": lambda a, b: (a - b).sum(),
    "mul": lambda a, b: (a * b).sum(),
    "div": lambda a, b: (a / (b * b + 1.0)).sum(),
    "matmul": lambda a, b: (a @ b.T).sum(),
}


@pytest.mark.parametrize("name", sorted(BINARY_OPS))
@pytest.mark.parametrize("side", [0, 1])
def test_binary_gradients(name, side, rng):
    other = rng.normal(size=(3, 4))

    def build(x):
        operands = [x, Tensor(other)] if side == 0 else [Tensor(other), x]
        return BINARY_OPS[name](*operands)

    check_gradient(build, (3, 4), rng)


def test_broadcast_add_gradient(rng):
    row = rng.normal(size=4)

    def build(x):
        return (x + Tensor(row)).sum()

    check_gradient(build, (3, 4), rng)


def test_broadcast_reduces_gradient_to_row_shape(rng):
    row = Tensor(rng.normal(size=4), requires_grad=True)
    x = Tensor(rng.normal(size=(3, 4)))
    (x * row).sum().backward()
    assert row.grad.shape == (4,)
    assert np.allclose(row.grad, x.data.sum(axis=0))


def test_scalar_broadcasting(rng):
    x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
    (2.5 * x + 1.0).sum().backward()
    assert np.allclose(x.grad, 2.5)


def test_matmul_vector_cases(rng):
    a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
    v = Tensor(rng.normal(size=4), requires_grad=True)
    (a @ v).sum().backward()
    assert a.grad.shape == (3, 4)
    assert v.grad.shape == (4,)
    u = Tensor(rng.normal(size=3), requires_grad=True)
    w = Tensor(rng.normal(size=3), requires_grad=True)
    (u @ w).backward()
    assert np.allclose(u.grad, w.data)


def test_matmul_rejects_3d(rng):
    a = Tensor(rng.normal(size=(2, 3, 4)))
    with pytest.raises(ValueError):
        a @ a


def test_gradient_accumulates_across_uses(rng):
    x = Tensor(rng.normal(size=3), requires_grad=True)
    ((x * 2.0).sum() + (x * 3.0).sum()).backward()
    assert np.allclose(x.grad, 5.0)


def test_backward_twice_accumulates():
    x = Tensor(np.ones(2), requires_grad=True)
    y = (x * 2.0).sum()
    y.backward()
    first = x.grad.copy()
    x.zero_grad()
    y2 = (x * 2.0).sum()
    y2.backward()
    assert np.allclose(first, x.grad)


def test_detach_cuts_tape(rng):
    x = Tensor(rng.normal(size=3), requires_grad=True)
    (x.detach() * 2.0).sum().backward()
    assert x.grad is None


def test_no_grad_disables_taping(rng):
    x = Tensor(rng.normal(size=3), requires_grad=True)
    with no_grad():
        y = (x * 2.0).sum()
    assert not y.requires_grad
    assert y._parents == ()


def test_no_grad_restores_on_exception(rng):
    from repro.tensor import is_grad_enabled
    try:
        with no_grad():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert is_grad_enabled()


def test_concatenate_gradient(rng):
    a0, b0 = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
    a = Tensor(a0, requires_grad=True)
    b = Tensor(b0, requires_grad=True)
    (concatenate([a, b], axis=0) ** 2.0).sum().backward()
    assert np.allclose(a.grad, 2 * a0)
    assert np.allclose(b.grad, 2 * b0)


def test_stack_gradient(rng):
    a = Tensor(rng.normal(size=3), requires_grad=True)
    b = Tensor(rng.normal(size=3), requires_grad=True)
    stacked = stack([a, b], axis=0)
    assert stacked.shape == (2, 3)
    (stacked * Tensor(np.array([[1.0], [2.0]]))).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 2.0)


def test_where_gradient(rng):
    condition = np.array([True, False, True])
    a = Tensor(rng.normal(size=3), requires_grad=True)
    b = Tensor(rng.normal(size=3), requires_grad=True)
    where(condition, a, b).sum().backward()
    assert np.allclose(a.grad, condition.astype(float))
    assert np.allclose(b.grad, (~condition).astype(float))


def test_softmax_rows_sum_to_one(rng):
    x = Tensor(rng.normal(size=(5, 7)))
    assert np.allclose(x.softmax(axis=1).data.sum(axis=1), 1.0)


def test_log_softmax_stable_for_large_values():
    x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
    out = x.log_softmax(axis=1)
    assert np.isfinite(out.data).all()


def test_comparisons_return_ndarray(rng):
    x = Tensor(np.array([1.0, -1.0]))
    assert isinstance(x > 0, np.ndarray)
    assert (x > 0).tolist() == [True, False]


def test_int_input_promoted_to_float():
    x = Tensor(np.array([1, 2, 3]))
    assert x.dtype.kind == "f"


def test_repr_mentions_requires_grad():
    assert "requires_grad" in repr(Tensor(np.zeros(2), requires_grad=True))


def test_item_and_len():
    assert Tensor(np.array(3.5)).item() == 3.5
    assert len(Tensor(np.zeros((4, 2)))) == 4


# ----------------------------------------------------------------------
# Consumed-tape guard + where() condition coercion (PR 9 regressions)
# ----------------------------------------------------------------------
def test_where_accepts_tensor_condition(rng):
    from repro.tensor import where

    a = Tensor(rng.normal(size=5), requires_grad=True)
    b = Tensor(rng.normal(size=5), requires_grad=True)
    condition = Tensor((np.arange(5) % 2).astype(np.float64))
    out = where(condition, a, b)
    expected = np.where(condition.data.astype(bool), a.data, b.data)
    assert np.array_equal(out.data, expected)
    out.sum().backward()
    assert np.array_equal(a.grad, condition.data.astype(bool).astype(float))
    assert np.array_equal(b.grad, (~condition.data.astype(bool)).astype(float))


def test_where_tensor_and_ndarray_conditions_agree(rng):
    from repro.tensor import where

    a, b = Tensor(rng.normal(size=4)), Tensor(rng.normal(size=4))
    mask = np.array([True, False, True, False])
    assert np.array_equal(where(Tensor(mask.astype(float)), a, b).data,
                          where(mask, a, b).data)


def test_double_backward_raises():
    x = Tensor(np.ones(3), requires_grad=True)
    y = (x * 2.0).sum()
    y.backward()
    with pytest.raises(RuntimeError, match="consumed"):
        y.backward()
    # The guard fired before touching gradients: no double accumulation.
    assert np.allclose(x.grad, 2.0)


def test_backward_retain_graph_allows_second_pass():
    x = Tensor(np.ones(3), requires_grad=True)
    y = (x * 2.0).sum()
    y.backward(retain_graph=True)
    y.backward(retain_graph=True)  # accumulates, documented behaviour
    assert np.allclose(x.grad, 4.0)


def test_backward_releases_tape_state(rng):
    x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
    hidden = x * 2.0
    out = hidden.sum()
    out.backward()
    # Leaves keep their gradient; intermediates release closure, parents
    # and gradient buffer so a training step holds no tape garbage.
    assert x.grad is not None
    assert hidden.grad is None
    assert hidden._backward is None
    assert hidden._parents == ()
