"""Chaos tests: the pool survives killed, hung and repeatedly-failing workers.

Process-level injection is gated behind ``REPRO_CHAOS=1`` (the CI chaos
leg sets it); see :mod:`repro.validate.faults` for the injectors. Every
test asserts three things about an injected failure: it is *detected*
(within a wall-clock bound for hangs), it is *recovered* (the map returns
the full, correct result) and it is *counted* (``resilience/*`` metrics).
"""

from __future__ import annotations

import time

import pytest

from repro.obs import Observer
from repro.runtime import ParallelExecutionError, ParallelExecutor
from repro.runtime.executor import fork_available
from repro.validate.faults import HangWorkerOnce, KillWorkerOnce, chaos_enabled

pytestmark = [
    pytest.mark.skipif(not chaos_enabled(),
                       reason="chaos tests run with REPRO_CHAOS=1"),
    pytest.mark.skipif(not fork_available(),
                       reason="process chaos needs the fork start method"),
]


def test_killed_worker_is_replaced_and_chunk_recomputed(tmp_path):
    job = KillWorkerOnce(tmp_path / "killed", item=0)
    observer = Observer()
    with observer.activate():
        result = ParallelExecutor(workers=2, chunk_size=1,
                                  retries=1).map(job, list(range(4)))
    assert result == [0, 1, 2, 3]
    assert job.fired()
    assert observer.metrics.count("resilience/worker_deaths") == 1
    assert observer.metrics.count("runtime/retries") == 1


def test_hung_worker_detected_within_timeout_and_recovered(tmp_path):
    timeout = 0.5
    job = HangWorkerOnce(tmp_path / "hung", item=0, seconds=300.0)
    observer = Observer()
    started = time.monotonic()
    with observer.activate():
        result = ParallelExecutor(workers=2, chunk_size=1, retries=1,
                                  timeout=timeout).map(job, list(range(4)))
    elapsed = time.monotonic() - started
    assert result == [0, 1, 2, 3]
    assert job.fired()
    # Detection is bounded by the per-chunk timeout plus the parent's poll
    # tick; the generous bound keeps slow CI machines from flaking while
    # still proving we never waited out the 300s sleep.
    assert elapsed < timeout + 10.0
    assert observer.metrics.count("resilience/hung_workers") == 1
    assert observer.metrics.count("runtime/retries") == 1


def test_pool_degrades_to_serial_after_max_failures(tmp_path):
    job = KillWorkerOnce(tmp_path / "killed", item=0)
    observer = Observer()
    with observer.activate():
        result = ParallelExecutor(workers=2, chunk_size=1, retries=2,
                                  max_pool_failures=1).map(job, list(range(6)))
    assert result == [0, 1, 2, 3, 4, 5]
    assert observer.metrics.count("resilience/serial_degradations") == 1
    assert observer.metrics.gauge("runtime/degraded") == 1
    assert observer.metrics.count("resilience/worker_deaths") >= 1


def _always_kill(x):
    import os

    if x == 0:
        os._exit(9)
    return x


def test_repeatedly_killed_chunk_exhausts_retries():
    # No marker coordination: the chunk's worker dies on *every* attempt,
    # so the retry budget runs out and the failure surfaces with a
    # process-level description instead of hanging the parent.
    observer = Observer()
    with observer.activate():
        with pytest.raises(ParallelExecutionError) as excinfo:
            ParallelExecutor(workers=2, chunk_size=1, retries=1,
                             max_pool_failures=10).map(_always_kill,
                                                       list(range(3)))
    assert excinfo.value.attempts == 2
    assert "died" in excinfo.value.remote_traceback
    assert observer.metrics.count("resilience/worker_deaths") == 2


def test_chaos_map_stays_bit_identical_to_serial(tmp_path):
    """The recovery paths never change results, only wall-time."""
    job = KillWorkerOnce(tmp_path / "killed", item=2)
    chaotic = ParallelExecutor(workers=2, chunk_size=1,
                               retries=1).map(job, list(range(8)))
    serial = ParallelExecutor(workers=1).map(lambda x: x, list(range(8)))
    assert chaotic == serial
