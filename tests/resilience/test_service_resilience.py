"""EmbeddingService under failure: deadlines, breaker fallback, shedding."""

from __future__ import annotations

import time

import numpy as np
import pytest
from _helpers import make_path, make_triangle

from repro.gnn import GNNEncoder
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    LoadShedError,
)
from repro.serve import EmbeddingService


class _FlakyEncoder:
    """Encoder wrapper whose forward pass can be failed or slowed at will."""

    def __init__(self, encoder, *, delay=0.0):
        self.encoder = encoder
        self.delay = delay
        self.fail = False

    def eval(self):
        self.encoder.eval()
        return self

    def __getattr__(self, name):
        return getattr(self.encoder, name)

    def graph_representations(self, batch):
        if self.fail:
            raise RuntimeError("injected encoder failure")
        if self.delay:
            time.sleep(self.delay)
        return self.encoder.graph_representations(batch)


@pytest.fixture
def encoder(rng):
    return GNNEncoder(4, 8, 2, rng=rng)


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng, y=0), make_path(rng, n=4, y=1),
            make_path(rng, n=5, y=0), make_path(rng, n=6, y=1)]


def _service(encoder, **kwargs):
    kwargs.setdefault("max_batch_size", 1)
    return EmbeddingService(encoder, **kwargs)


# ----------------------------------------------------------------------
# Request deadlines
# ----------------------------------------------------------------------
def test_slow_request_exceeds_deadline(encoder, graphs):
    slow = _FlakyEncoder(encoder, delay=0.05)
    service = _service(slow, deadline_seconds=0.02)
    with pytest.raises(DeadlineExceeded):
        service.embed(graphs)  # chunk 1 eats the budget; chunk 2 is refused
    assert service.stats()["resilience"]["timeouts"] == 1


def test_fast_request_meets_deadline(encoder, graphs):
    service = _service(encoder, deadline_seconds=30.0)
    assert service.embed(graphs).shape[0] == len(graphs)
    assert service.stats()["resilience"]["timeouts"] == 0


def test_cached_request_never_times_out(encoder, graphs):
    slow = _FlakyEncoder(encoder)
    service = _service(slow, deadline_seconds=0.02)
    service.embed(graphs)      # fast: populate the cache
    slow.delay = 10.0          # encoder now far too slow...
    rows = service.embed(graphs)  # ...but fully cached requests skip it
    assert rows.shape[0] == len(graphs)


# ----------------------------------------------------------------------
# Circuit breaker -> cache-only degraded mode -> recovery
# ----------------------------------------------------------------------
def test_breaker_opens_then_serves_cache_only_then_recovers(encoder, graphs):
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=10.0,
                             clock=lambda: clock[0], name="test-encoder")
    flaky = _FlakyEncoder(encoder)
    service = _service(flaky, breaker=breaker)
    cached, uncached = graphs[0], graphs[1]
    expected = service.embed(cached)  # healthy: populate the cache

    flaky.fail = True
    with pytest.raises(RuntimeError, match="injected"):
        service.embed(uncached)
    assert breaker.state == CircuitBreaker.OPEN

    # Degraded mode: cached traffic still flows, encoder traffic is shed.
    assert np.array_equal(service.embed(cached), expected)
    with pytest.raises(CircuitOpenError):
        service.embed(uncached)
    resilience = service.stats()["resilience"]
    assert resilience["encoder_failures"] == 1
    assert resilience["shed"] >= 1
    assert resilience["breaker"]["state"] == CircuitBreaker.OPEN

    # Recovery: timeout elapses, the half-open probe succeeds, traffic flows.
    clock[0] = 10.5
    flaky.fail = False
    assert service.embed(uncached).shape[0] == 1
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_failed_probe_reopens(encoder, graphs):
    clock = [0.0]
    breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=5.0,
                             clock=lambda: clock[0])
    flaky = _FlakyEncoder(encoder)
    service = _service(flaky, breaker=breaker)
    flaky.fail = True
    with pytest.raises(RuntimeError):
        service.embed(graphs[0])
    clock[0] = 5.5
    with pytest.raises(RuntimeError):  # half-open probe fails
        service.embed(graphs[0])
    assert breaker.state == CircuitBreaker.OPEN


# ----------------------------------------------------------------------
# Bounded-queue load shedding
# ----------------------------------------------------------------------
def test_submit_sheds_past_max_queue(encoder, graphs):
    service = EmbeddingService(encoder, max_batch_size=64, max_queue=2)
    service.submit(graphs[0])
    service.submit(graphs[1])
    with pytest.raises(LoadShedError, match="max_queue"):
        service.submit(graphs[2])
    assert service.stats()["resilience"]["shed"] == 1
    assert service.stats()["resilience"]["queue_depth"] == 2
    service.flush()  # backlog drains; the shed graph can now be resubmitted
    assert service.submit(graphs[2]).result().shape == (8,)


def test_cached_submit_accepted_even_when_queue_full(encoder, graphs):
    service = EmbeddingService(encoder, max_batch_size=64, max_queue=1)
    cached = graphs[0]
    service.embed(cached)
    service.submit(graphs[1])  # fills the queue
    handle = service.submit(cached)  # cached: accepted, no queue slot needed
    assert handle.result().shape == (8,)


def test_uncached_submit_shed_while_breaker_open(encoder, graphs):
    breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=30.0)
    service = EmbeddingService(encoder, breaker=breaker)
    breaker.record_failure()  # trip it
    with pytest.raises(LoadShedError, match="circuit"):
        service.submit(graphs[0])


def test_flush_requeues_uncomputed_graphs_on_failure(encoder, graphs):
    flaky = _FlakyEncoder(encoder)
    service = EmbeddingService(flaky, max_batch_size=64)
    handles = [service.submit(g) for g in graphs[:2]]
    flaky.fail = True
    with pytest.raises(RuntimeError):
        service.flush()
    assert service.stats()["resilience"]["queue_depth"] == 2
    flaky.fail = False  # dependency recovers; pending handles still resolve
    assert all(h.result().shape == (8,) for h in handles)


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------
def test_stats_resilience_block(encoder, graphs):
    service = EmbeddingService(encoder, deadline_seconds=5.0, max_queue=8)
    service.embed(graphs)
    resilience = service.stats()["resilience"]
    assert resilience == {
        "shed": 0, "timeouts": 0, "encoder_failures": 0,
        "breaker": {"state": "closed", "failures": 0, "openings": 0,
                    "rejections": 0},
        "queue_depth": 0, "max_queue": 8, "deadline_seconds": 5.0,
    }


def test_service_parameter_validation(encoder):
    with pytest.raises(ValueError):
        EmbeddingService(encoder, deadline_seconds=0.0)
    with pytest.raises(ValueError):
        EmbeddingService(encoder, max_queue=0)
