"""Resilience primitives: retry backoff, deadlines, circuit breaking."""

from __future__ import annotations

import pytest

from repro.obs import Observer
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.validate.faults import FlakyIO


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                         max_delay=0.5, jitter=0.0)
    assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_is_deterministic_per_seed():
    a = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
    b = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
    c = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=8)
    assert a.delays() == b.delays()
    assert a.delays() != c.delays()
    # Jitter only ever shortens the raw delay, never exceeds it.
    raw = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0).delays()
    assert all(0 < d <= r for d, r in zip(a.delays(), raw))


def test_call_recovers_from_transient_flaky_io():
    sleeps = []
    policy = RetryPolicy(max_attempts=3, base_delay=0.25, jitter=0.0,
                         sleep=sleeps.append)
    flaky = FlakyIO(lambda: "payload", failures=2)
    assert policy.call(flaky) == "payload"
    assert flaky.calls == 3
    assert sleeps == [0.25, 0.5]


def test_call_exhaustion_raises_and_counts():
    observer = Observer()
    flaky = FlakyIO(lambda: "never", failures=10)
    with observer.activate():
        with pytest.raises(RetryExhaustedError) as excinfo:
            RetryPolicy(max_attempts=3, base_delay=0.0).call(flaky)
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.__cause__, OSError)
    assert observer.metrics.count("resilience/retries") == 2
    assert observer.metrics.count("resilience/giveups") == 1


def test_call_does_not_retry_unlisted_exceptions():
    calls = []

    def typo():
        calls.append(1)
        raise TypeError("not retryable")

    with pytest.raises(TypeError):
        RetryPolicy(max_attempts=5, base_delay=0.0).call(
            typo, retry_on=(OSError,))
    assert len(calls) == 1


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_expires_on_fake_clock():
    now = [0.0]
    deadline = Deadline(5.0, clock=lambda: now[0])
    assert deadline.remaining() == pytest.approx(5.0)
    assert not deadline.expired
    deadline.check()  # fine while within budget
    now[0] = 5.1
    assert deadline.expired
    observer = Observer()
    with observer.activate():
        with pytest.raises(DeadlineExceeded, match="deadline"):
            deadline.check("encode")
    assert observer.metrics.count("resilience/deadline_exceeded") == 1


def test_unlimited_deadline_never_expires():
    deadline = Deadline(None)
    assert deadline.remaining() == float("inf")
    deadline.check()
    assert not deadline.expired


def test_deadline_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        Deadline(0.0)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def _breaker(clock, threshold=2, recovery=10.0):
    return CircuitBreaker(failure_threshold=threshold,
                          recovery_timeout=recovery,
                          clock=lambda: clock[0], name="test")


def test_breaker_opens_after_threshold_and_recovers():
    clock = [0.0]
    breaker = _breaker(clock)
    observer = Observer()
    with observer.activate():
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        # Recovery timeout elapses -> half-open probe allowed.
        clock[0] = 10.5
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
    assert observer.metrics.count("resilience/breaker_open") == 1
    assert observer.metrics.count("resilience/breaker_rejections") == 1
    assert observer.metrics.gauge("resilience/breaker_state") == 0


def test_half_open_failure_reopens():
    clock = [0.0]
    breaker = _breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    clock[0] = 11.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()      # probe failed
    assert breaker.state == CircuitBreaker.OPEN
    clock[0] = 15.0               # clock restarted at reopen: still open
    assert breaker.state == CircuitBreaker.OPEN
    clock[0] = 21.5
    assert breaker.state == CircuitBreaker.HALF_OPEN


def test_breaker_call_wraps_and_rejects():
    clock = [0.0]
    breaker = _breaker(clock, threshold=1)

    def bad():
        raise RuntimeError("dependency down")

    with pytest.raises(RuntimeError):
        breaker.call(bad)
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "unreached")
    stats = breaker.stats()
    assert stats["state"] == CircuitBreaker.OPEN
    assert stats["failures"] == 1
    assert stats["openings"] == 1
    assert stats["rejections"] == 1


def test_success_resets_consecutive_failures():
    clock = [0.0]
    breaker = _breaker(clock, threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(recovery_timeout=0.0)
