"""Crash-safe auto-resume: integrity checks, discovery fallback, signals."""

from __future__ import annotations

import json
import signal

import numpy as np
import pytest
from _helpers import make_path, make_triangle

from repro.core import SGCLConfig, SGCLTrainer
from repro.obs import Observer
from repro.resilience import (
    find_latest_checkpoint,
    interrupt_guard,
    resume_trainer,
)
from repro.serve import CheckpointIntegrityError, load_checkpoint, verify_checkpoint
from repro.serve.checkpoint import read_checkpoint_header
from repro.validate.faults import corrupt_checkpoint


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng, y=i % 2) for i in range(4)] + \
        [make_path(rng, n=4 + i % 3, y=i % 2) for i in range(4)]


def _trainer(epochs=1):
    return SGCLTrainer(4, SGCLConfig(epochs=epochs, batch_size=4, seed=0))


# ----------------------------------------------------------------------
# Checkpoint integrity (sha256 checksum)
# ----------------------------------------------------------------------
def test_checkpoint_header_carries_checksum(tmp_path, graphs):
    trainer = _trainer()
    trainer.pretrain(graphs)
    path = trainer.save_checkpoint(tmp_path / "ck.npz")
    header = read_checkpoint_header(path)
    assert len(header["checksum"]) == 64  # sha256 hex
    assert verify_checkpoint(path)


def test_tampered_payload_fails_integrity_check(tmp_path, graphs):
    """A bit flip the zip container still accepts is caught by the sha256."""
    trainer = _trainer()
    trainer.pretrain(graphs)
    path = trainer.save_checkpoint(tmp_path / "ck.npz")
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    key = next(k for k in arrays if k.startswith("model/"))
    arrays[key] = arrays[key] + 1e-3  # silent parameter corruption
    np.savez(path, **arrays)
    with pytest.raises(CheckpointIntegrityError, match="sha256"):
        load_checkpoint(path)
    assert not verify_checkpoint(path)


def test_pre_checksum_bundles_still_load(tmp_path, graphs):
    trainer = _trainer()
    trainer.pretrain(graphs)
    path = trainer.save_checkpoint(tmp_path / "old.npz")
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    header = json.loads(bytes(arrays["__header__"]).decode())
    del header["checksum"]
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **arrays)
    load_checkpoint(path)  # no checksum -> nothing to compare
    assert verify_checkpoint(path)


@pytest.mark.parametrize("mode", ["truncate", "garbage", "empty"])
def test_on_disk_corruption_never_verifies(tmp_path, graphs, mode):
    trainer = _trainer()
    trainer.pretrain(graphs)
    path = trainer.save_checkpoint(tmp_path / "ck.npz")
    corrupt_checkpoint(path, mode=mode)
    assert not verify_checkpoint(path)


# ----------------------------------------------------------------------
# Discovery and fallback
# ----------------------------------------------------------------------
def test_find_latest_prefers_most_trained_valid_checkpoint(tmp_path, graphs):
    trainer = _trainer()
    for epoch in (1, 2, 3):
        trainer.pretrain(graphs, epochs=1)
        trainer.save_checkpoint(tmp_path / f"epoch-{epoch:04d}.npz")
    assert find_latest_checkpoint(tmp_path).name == "epoch-0003.npz"


def test_find_latest_falls_back_past_corrupt_checkpoints(tmp_path, graphs):
    trainer = _trainer()
    for epoch in (1, 2, 3):
        trainer.pretrain(graphs, epochs=1)
        trainer.save_checkpoint(tmp_path / f"epoch-{epoch:04d}.npz")
    corrupt_checkpoint(tmp_path / "epoch-0003.npz", mode="garbage")
    observer = Observer()
    with observer.activate():
        best = find_latest_checkpoint(tmp_path)
    assert best.name == "epoch-0002.npz"
    assert observer.metrics.count("resilience/corrupt_checkpoints") >= 1


def test_find_latest_handles_missing_and_empty_dirs(tmp_path):
    assert find_latest_checkpoint(tmp_path / "nope") is None
    assert find_latest_checkpoint(tmp_path) is None
    assert resume_trainer(tmp_path) is None


def test_every_checkpoint_corrupt_returns_none(tmp_path, graphs):
    trainer = _trainer()
    trainer.pretrain(graphs)
    trainer.save_checkpoint(tmp_path / "only.npz")
    corrupt_checkpoint(tmp_path / "only.npz", mode="empty")
    observer = Observer()
    with observer.activate():
        assert find_latest_checkpoint(tmp_path) is None
    assert observer.metrics.count("resilience/corrupt_checkpoints") == 1


# ----------------------------------------------------------------------
# Interrupted-then-resumed == uninterrupted (the acceptance criterion)
# ----------------------------------------------------------------------
class _StopAfter(Observer):
    """Observer that requests a graceful stop after N epoch events."""

    def __init__(self, trainer, epochs):
        super().__init__()
        self._trainer = trainer
        self._remaining = epochs

    def event(self, kind, **fields):
        if kind == "epoch":
            self._remaining -= 1
            if self._remaining == 0:
                self._trainer.request_stop()
        return super().event(kind, **fields)


def _comparable(history):
    """History rows minus wall-clock timing and observer-dependent extras
    (``grad_norm`` is only recorded when an observer is enabled); every
    remaining field is a pure function of the seed."""
    return [{k: v for k, v in row.items()
             if k not in ("epoch_seconds", "grad_norm")}
            for row in history]


def test_interrupted_then_resumed_matches_uninterrupted(tmp_path, graphs):
    config = SGCLConfig(epochs=4, batch_size=4, seed=0)
    reference = SGCLTrainer(4, config)
    reference.pretrain(graphs)

    interrupted = SGCLTrainer(4, config)
    stopper = _StopAfter(interrupted, epochs=2)
    interrupted.pretrain(graphs, observer=stopper)
    assert len(interrupted.history) == 2  # stopped at the epoch boundary
    interrupted.save_emergency_checkpoint(tmp_path)

    resumed = resume_trainer(tmp_path)
    assert resumed is not None
    assert len(resumed.history) == 2
    resumed.pretrain(graphs, epochs=2)

    assert _comparable(resumed.history) == _comparable(reference.history)
    original = reference.model.state_dict()
    restored = resumed.model.state_dict()
    assert set(original) == set(restored)
    assert all(np.array_equal(original[k], restored[k]) for k in original)


def test_equal_epochs_and_mtime_break_ties_on_filename(tmp_path, graphs):
    """Coarse filesystem timestamps must not make resume nondeterministic.

    Two checkpoints with the same epoch count written within one
    timestamp granule used to resume in directory-iteration order; the
    filename leg (descending) pins the winner: ``latest.npz`` beats any
    ``epoch-*.npz`` twin.
    """
    trainer = _trainer()
    trainer.pretrain(graphs, epochs=1)
    a = trainer.save_checkpoint(tmp_path / "epoch-0001.npz")
    b = trainer.save_checkpoint(tmp_path / "latest.npz")
    stamp = 1_700_000_000
    import os
    os.utime(a, (stamp, stamp))
    os.utime(b, (stamp, stamp))
    assert find_latest_checkpoint(tmp_path).name == "latest.npz"
    # and the ordering is content-driven, not name-driven, when epochs differ
    trainer.pretrain(graphs, epochs=1)
    c = trainer.save_checkpoint(tmp_path / "epoch-0002.npz")
    os.utime(c, (stamp, stamp))
    assert find_latest_checkpoint(tmp_path).name == "epoch-0002.npz"


def test_resume_picks_emergency_over_stale_latest(tmp_path, graphs):
    """latest.npz from an older run must lose to a more-trained emergency."""
    trainer = _trainer()
    trainer.pretrain(graphs, epochs=1)
    trainer.save_checkpoint(tmp_path / "latest.npz")
    trainer.pretrain(graphs, epochs=1)
    trainer.save_emergency_checkpoint(tmp_path)
    assert find_latest_checkpoint(tmp_path).name == "emergency.npz"


# ----------------------------------------------------------------------
# Signal trapping
# ----------------------------------------------------------------------
def test_interrupt_guard_graceful_then_hard():
    stops = []
    observer = Observer()
    with observer.activate():
        with interrupt_guard(on_interrupt=lambda: stops.append(1)) as state:
            assert not state.interrupted
            signal.raise_signal(signal.SIGINT)
            assert state.interrupted
            assert state.signal_name == "SIGINT"
            assert stops == [1]
            with pytest.raises(KeyboardInterrupt):
                signal.raise_signal(signal.SIGINT)
    assert observer.metrics.count("resilience/interrupts") == 1


def test_interrupt_guard_restores_previous_handlers():
    before = signal.getsignal(signal.SIGINT)
    with interrupt_guard():
        assert signal.getsignal(signal.SIGINT) is not before
    assert signal.getsignal(signal.SIGINT) is before


def test_interrupt_guard_sigterm_requests_stop(graphs):
    trainer = _trainer()
    with interrupt_guard(on_interrupt=trainer.request_stop) as state:
        signal.raise_signal(signal.SIGTERM)
    assert state.signal_name == "SIGTERM"
    assert trainer.stop_requested
    # A fresh pretrain call clears the stale flag and runs normally
    # (request_stop only targets the loop that is running when it fires).
    history = trainer.pretrain(graphs, epochs=1)
    assert len(history) == 1
    assert not trainer.stop_requested
