"""Sampler determinism contract (ISSUE 8 acceptance criterion).

Same seed ⇒ bit-identical subgraph sequences; serial vs parallel
execution and any worker count produce the same stream; growing the
stream keeps earlier subgraphs identical (prefix stability).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import ParallelExecutor, task_seeds
from repro.sampling import (
    SubgraphStream,
    induced_subgraph,
    load_node_dataset,
    make_sampler,
)
from repro.sampling.stream import _SampleJob

SAMPLERS = ["walk", "neighbor", "edge"]


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.001)


def _fingerprint(graph):
    return (graph.meta["node_id"].tobytes(), graph.edge_index.tobytes(),
            graph.x.tobytes(), graph.meta["node_y"].tobytes())


# ----------------------------------------------------------------------
# Induced subgraph extraction
# ----------------------------------------------------------------------
def test_induced_subgraph_matches_reference(dataset):
    nodes = np.array([5, 2, 900, 2, 44, 13])  # dupes + unsorted on purpose
    graph = induced_subgraph(dataset, nodes)
    unique = np.unique(nodes)
    assert np.array_equal(graph.meta["node_id"], unique)
    assert np.array_equal(graph.x, dataset.x[unique])
    assert np.array_equal(graph.meta["node_y"], dataset.y[unique])
    # Reference: O(E) scan over the full edge list.
    src, dst = dataset.edge_index
    member = np.isin(src, unique) & np.isin(dst, unique)
    relabel = {int(g): i for i, g in enumerate(unique)}
    expected = {(relabel[int(s)], relabel[int(d)])
                for s, d in zip(src[member], dst[member])}
    got = set(zip(graph.edge_index[0].tolist(), graph.edge_index[1].tolist()))
    assert got == expected


@pytest.mark.parametrize("name", SAMPLERS)
def test_subgraph_is_well_formed(dataset, name):
    graph = make_sampler(name, dataset).sample(99)
    assert graph.num_nodes > 1
    assert graph.y is None
    node_id = graph.meta["node_id"]
    assert np.array_equal(node_id, np.unique(node_id))  # sorted, unique
    if graph.num_edges:
        assert graph.edge_index.max() < graph.num_nodes
        # Every sampled edge exists in the big graph.
        n = dataset.num_nodes
        big = set((dataset.edge_index[0] * n + dataset.edge_index[1])
                  .tolist())
        src, dst = node_id[graph.edge_index[0]], node_id[graph.edge_index[1]]
        assert all(int(s) * n + int(d) in big for s, d in zip(src, dst))


# ----------------------------------------------------------------------
# Determinism contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SAMPLERS)
def test_same_seed_bit_identical_sequence(dataset, name):
    sampler = make_sampler(name, dataset)
    seeds = task_seeds(42, 6)
    first = [_fingerprint(sampler.sample(s)) for s in seeds]
    second = [_fingerprint(sampler.sample(s)) for s in seeds]
    assert first == second
    different = [_fingerprint(sampler.sample(s))
                 for s in task_seeds(43, 6)]
    assert first != different


@pytest.mark.parametrize("name", SAMPLERS)
def test_serial_vs_parallel_equivalence(dataset, name):
    job = _SampleJob(make_sampler(name, dataset))
    seeds = task_seeds(7, 8)
    serial = ParallelExecutor(workers=1).map(job, seeds)
    parallel = ParallelExecutor(workers=2).map(job, seeds)
    assert [_fingerprint(g) for g in serial] == \
        [_fingerprint(g) for g in parallel]


def test_stream_worker_count_independent(dataset):
    streams = [
        SubgraphStream(make_sampler("walk", dataset), samples_per_epoch=8,
                       batch_size=3, seed=11,
                       executor=ParallelExecutor(workers=workers))
        for workers in (1, 2, 3)
    ]
    sequences = [[_fingerprint(g) for g in stream.subgraphs(epoch=2)]
                 for stream in streams]
    assert sequences[0] == sequences[1] == sequences[2]


def test_stream_prefix_stable_when_epoch_grows(dataset):
    """More samples per epoch extends the stream without rewriting it."""
    short = SubgraphStream(make_sampler("walk", dataset),
                           samples_per_epoch=4, batch_size=2, seed=5)
    long = SubgraphStream(make_sampler("walk", dataset),
                          samples_per_epoch=8, batch_size=2, seed=5)
    short_seq = [_fingerprint(g) for g in short.subgraphs(epoch=0)]
    long_seq = [_fingerprint(g) for g in long.subgraphs(epoch=0)]
    assert long_seq[:len(short_seq)] == short_seq


def test_epochs_draw_distinct_streams(dataset):
    stream = SubgraphStream(make_sampler("walk", dataset),
                            samples_per_epoch=4, batch_size=2, seed=5)
    epoch0 = [_fingerprint(g) for g in stream.subgraphs(epoch=0)]
    epoch1 = [_fingerprint(g) for g in stream.subgraphs(epoch=1)]
    assert epoch0 != epoch1
    assert epoch0 == [_fingerprint(g) for g in stream.subgraphs(epoch=0)]
