"""Node-level SGCL: loss mechanics, training loop, checkpoint resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLModel
from repro.sampling import (
    NodeSGCLTrainer,
    SubgraphStream,
    load_node_dataset,
    make_sampler,
    node_contrastive_loss,
    node_info_nce,
)
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.0005)


@pytest.fixture()
def config():
    return SGCLConfig(hidden_dim=8, num_layers=2, epochs=1, seed=0)


def _stream(dataset, **kwargs):
    defaults = dict(samples_per_epoch=4, batch_size=2, seed=1,
                    norm_samples=10)
    defaults.update(kwargs)
    return SubgraphStream(
        make_sampler("walk", dataset, roots=8, walk_length=4), **defaults)


# ----------------------------------------------------------------------
# node_info_nce
# ----------------------------------------------------------------------
def test_node_info_nce_prefers_matched_rows(rng):
    z = Tensor(rng.normal(size=(12, 6)))
    aligned = node_info_nce(z, z, tau=0.2)
    shuffled = node_info_nce(
        z, Tensor(z.data[rng.permutation(12)]), tau=0.2)
    assert np.isfinite(aligned.item())
    assert aligned.item() < shuffled.item()


def test_node_info_nce_weights_are_mean_normalised(rng):
    a = Tensor(rng.normal(size=(8, 4)))
    b = Tensor(rng.normal(size=(8, 4)))
    base = node_info_nce(a, b, tau=0.2).item()
    uniform = node_info_nce(a, b, tau=0.2,
                            weights=np.full(8, 7.0)).item()
    assert uniform == pytest.approx(base)  # uniform weights are a no-op
    skewed = node_info_nce(a, b, tau=0.2,
                           weights=np.arange(1.0, 9.0)).item()
    assert skewed != pytest.approx(base)


def test_node_info_nce_rejects_single_node(rng):
    z = Tensor(rng.normal(size=(1, 4)))
    with pytest.raises(ValueError):
        node_info_nce(z, z, tau=0.2)


# ----------------------------------------------------------------------
# node_contrastive_loss
# ----------------------------------------------------------------------
def test_node_contrastive_loss_is_finite(dataset, config, rng):
    stream = _stream(dataset)
    batch, norms = next(iter(stream.batches(epoch=0)))
    model = SGCLModel(dataset.num_features, config,
                      rng=np.random.default_rng(0))
    loss, stats = node_contrastive_loss(model, batch, stream.node_norms(),
                                        rng)
    assert loss is not None and np.isfinite(loss.item())
    for key in ("loss", "loss_s", "loss_g", "k_v_mean", "drop_fraction",
                "contrast_nodes"):
        assert np.isfinite(stats[key])
    assert 0.0 <= stats["drop_fraction"] < 1.0
    assert stats["contrast_nodes"] <= batch.num_nodes


def test_contrast_cap_limits_pair_count(dataset, config, rng):
    stream = _stream(dataset)
    batch, _ = next(iter(stream.batches(epoch=0)))
    model = SGCLModel(dataset.num_features, config,
                      rng=np.random.default_rng(0))
    _, stats = node_contrastive_loss(model, batch, stream.node_norms(),
                                     rng, max_contrast_nodes=5)
    assert stats["contrast_nodes"] == 5.0


# ----------------------------------------------------------------------
# NodeSGCLTrainer
# ----------------------------------------------------------------------
def test_pretrain_records_finite_history(dataset, config):
    trainer = NodeSGCLTrainer(dataset.num_features, config)
    history = trainer.pretrain(_stream(dataset), epochs=2)
    assert len(history) == 2
    for row in history:
        assert np.isfinite(row["loss"])
        assert row["num_batches"] == 2
        assert row["skipped_batches"] == 0
    assert history[0]["epoch"] == 1 and history[1]["epoch"] == 2


def test_checkpoint_round_trip(dataset, config, tmp_path):
    trainer = NodeSGCLTrainer(dataset.num_features, config)
    trainer.pretrain(_stream(dataset), epochs=1,
                     checkpoint_dir=tmp_path)
    assert (tmp_path / "latest.npz").exists()
    assert (tmp_path / "best.npz").exists()

    from repro.serve.checkpoint import read_checkpoint_header

    header = read_checkpoint_header(tmp_path / "latest.npz")
    assert header["metadata"]["node_level"] is True

    restored = NodeSGCLTrainer.from_checkpoint(tmp_path / "latest.npz")
    assert len(restored.history) == 1
    for original, copy in zip(trainer.model.parameters(),
                              restored.model.parameters()):
        assert np.array_equal(original.data, copy.data)


def test_resume_continues_the_same_stream(dataset, config, tmp_path):
    """2 epochs straight == 1 epoch + checkpoint + resume + 1 epoch."""
    straight = NodeSGCLTrainer(dataset.num_features, config)
    straight.pretrain(_stream(dataset), epochs=2)

    interrupted = NodeSGCLTrainer(dataset.num_features, config)
    interrupted.pretrain(_stream(dataset), epochs=1,
                         checkpoint_dir=tmp_path)
    resumed = NodeSGCLTrainer.from_checkpoint(tmp_path / "latest.npz")
    resumed.pretrain(_stream(dataset), epochs=1)

    assert resumed.history[1]["loss"] == \
        pytest.approx(straight.history[1]["loss"])
    for a, b in zip(straight.model.parameters(),
                    resumed.model.parameters()):
        assert np.allclose(a.data, b.data)
