"""SubgraphStream: batching, normalisation weights, prefetch parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Batch
from repro.sampling import SubgraphStream, load_node_dataset, make_sampler


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.001)


def _stream(dataset, **kwargs):
    defaults = dict(samples_per_epoch=6, batch_size=2, seed=9,
                    norm_samples=20)
    defaults.update(kwargs)
    return SubgraphStream(make_sampler("walk", dataset), **defaults)


def test_validates_arguments(dataset):
    with pytest.raises(ValueError):
        _stream(dataset, samples_per_epoch=0)
    with pytest.raises(ValueError):
        _stream(dataset, batch_size=0)


def test_batches_shape_and_alignment(dataset):
    stream = _stream(dataset)
    batches = list(stream.batches(epoch=0))
    assert len(batches) == stream.batches_per_epoch() == 3
    for batch, norms in batches:
        assert isinstance(batch, Batch)
        assert norms.shape == (batch.num_nodes,)
        assert (norms > 0).all()
        # Weights line up with the batch's node rows: norms[row] must equal
        # the global α_v of the node that row refers to.
        node_norms = stream.node_norms()
        global_ids = np.concatenate(
            [g.meta["node_id"] for g in batch.graphs])
        assert np.array_equal(norms, node_norms[global_ids])


def test_node_norms_cached_and_smoothed(dataset):
    stream = _stream(dataset)
    norms = stream.node_norms()
    assert norms is stream.node_norms()  # computed once
    assert norms.shape == (dataset.num_nodes,)
    assert np.isfinite(norms).all() and (norms > 0).all()
    # Never-sampled nodes get the Laplace ceiling (P + 1) / 1.
    assert norms.max() <= stream.norm_samples + 1.0
    # A pilot did run: some nodes were seen, so not all weights are the
    # ceiling, and frequent nodes get smaller weights.
    assert norms.min() < norms.max()


def test_norm_pilot_is_seed_deterministic(dataset):
    a = _stream(dataset).node_norms()
    b = _stream(dataset).node_norms()
    c = _stream(dataset, seed=10).node_norms()
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_prefetch_matches_serial(dataset):
    serial = list(_stream(dataset, prefetch=0).batches(epoch=1))
    prefetched = list(_stream(dataset, prefetch=2).batches(epoch=1))
    assert len(serial) == len(prefetched)
    for (batch_a, norms_a), (batch_b, norms_b) in zip(serial, prefetched):
        assert np.array_equal(batch_a.x, batch_b.x)
        assert np.array_equal(batch_a.edge_index, batch_b.edge_index)
        assert np.array_equal(norms_a, norms_b)


def test_subgraphs_agree_with_batches(dataset):
    stream = _stream(dataset)
    flat = [g for g in stream.subgraphs(epoch=0)]
    batched = [g for batch, _ in stream.batches(epoch=0)
               for g in batch.graphs]
    assert len(flat) == len(batched) == stream.samples_per_epoch
    for a, b in zip(flat, batched):
        assert np.array_equal(a.meta["node_id"], b.meta["node_id"])
        assert np.array_equal(a.edge_index, b.edge_index)
