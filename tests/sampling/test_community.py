"""Node-dataset registry and the community-1m generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import (
    CSRAdjacency,
    available_node_datasets,
    load_node_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.001)


def test_registry_lists_community_1m():
    assert "community-1m" in available_node_datasets()
    with pytest.raises(KeyError):
        load_node_dataset("no-such-dataset")


def test_scale_controls_node_count():
    small = load_node_dataset("community-1m", seed=0, scale=0.0005)
    assert small.num_nodes == 500
    floor = load_node_dataset("community-1m", seed=0, scale=1e-9)
    assert floor.num_nodes == 256  # floor keeps tiny scales sampleable


def test_generation_is_seed_deterministic():
    a = load_node_dataset("community-1m", seed=3, scale=0.0005)
    b = load_node_dataset("community-1m", seed=3, scale=0.0005)
    c = load_node_dataset("community-1m", seed=4, scale=0.0005)
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.edge_index, b.edge_index)
    assert np.array_equal(a.y, b.y)
    assert not np.array_equal(a.edge_index, c.edge_index)


def test_graph_invariants(dataset):
    src, dst = dataset.edge_index
    assert src.min() >= 0 and src.max() < dataset.num_nodes
    assert (src != dst).all()  # no self-loops
    # Undirected: both orientations present, each exactly once.
    n = dataset.num_nodes
    forward = np.sort(src * n + dst)
    backward = np.sort(dst * n + src)
    assert np.array_equal(forward, backward)
    assert len(np.unique(forward)) == len(forward)


def test_labels_follow_planted_communities(dataset):
    community = dataset.meta["community"]
    expected = community % dataset.num_classes
    agreement = (dataset.y == expected).mean()
    assert agreement > 0.9  # 5% label noise, a little flips back by chance
    assert dataset.y.min() >= 0 and dataset.y.max() < dataset.num_classes


def test_intra_community_edges_dominate(dataset):
    community = dataset.meta["community"]
    src, dst = dataset.edge_index
    intra = (community[src] == community[dst]).mean()
    assert intra > 0.6  # 4:1 intra:inter before dedup


def test_csr_matches_edge_index(dataset):
    csr = dataset.csr()
    assert csr is dataset.csr()  # cached
    assert csr.num_edges == dataset.num_edges
    degrees = np.bincount(dataset.edge_index[0],
                          minlength=dataset.num_nodes)
    assert np.array_equal(csr.degrees(), degrees)
    for node in (0, 7, dataset.num_nodes - 1):
        expected = np.sort(
            dataset.edge_index[1][dataset.edge_index[0] == node])
        assert np.array_equal(np.sort(csr.neighbors(node)), expected)


def test_csr_neighborhood_vectorised(dataset):
    csr = dataset.csr()
    nodes = np.array([3, 10, 500])
    src_pos, dst = csr.neighborhood(nodes)
    for i, node in enumerate(nodes):
        assert np.array_equal(dst[src_pos == i], csr.neighbors(node))


def test_csr_empty_graph():
    csr = CSRAdjacency.from_edge_index(np.zeros((2, 0), dtype=np.int64), 5)
    assert csr.num_nodes == 5 and csr.num_edges == 0
    assert np.array_equal(csr.degrees(), np.zeros(5, dtype=np.int64))
    src_pos, dst = csr.neighborhood(np.array([0, 4]))
    assert len(src_pos) == 0 and len(dst) == 0


def test_as_graph_round_trip(dataset):
    graph = dataset.as_graph()
    assert graph.num_nodes == dataset.num_nodes
    assert graph.y is None
    assert np.array_equal(graph.meta["node_y"], dataset.y)
