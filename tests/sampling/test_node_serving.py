"""Per-node serving: deterministic ego-nets riding the digest cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.graph import Batch
from repro.sampling import NodeEmbeddingIndex, ego_subgraph, load_node_dataset
from repro.serve.service import EmbeddingService, graph_digest


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.0005)


@pytest.fixture()
def encoder(dataset):
    return GNNEncoder(dataset.num_features, 8, 2,
                      rng=np.random.default_rng(0))


def test_ego_subgraph_contains_center(dataset):
    graph = ego_subgraph(dataset, 42, seed=0)
    node_id = graph.meta["node_id"]
    center = graph.meta["center"]
    assert node_id[center] == 42
    assert graph.num_nodes >= 1
    assert np.array_equal(graph.x, dataset.x[node_id])


def test_ego_subgraph_is_deterministic(dataset):
    a = ego_subgraph(dataset, 7, seed=3)
    b = ego_subgraph(dataset, 7, seed=3)
    assert np.array_equal(a.meta["node_id"], b.meta["node_id"])
    assert np.array_equal(a.edge_index, b.edge_index)
    assert graph_digest(a) == graph_digest(b)  # stable digest = cacheable
    different_seed = ego_subgraph(dataset, 7, seed=4)
    assert graph_digest(a) != graph_digest(different_seed)


def test_ego_subgraph_validates_node_id(dataset):
    with pytest.raises(IndexError):
        ego_subgraph(dataset, dataset.num_nodes)
    with pytest.raises(IndexError):
        ego_subgraph(dataset, -1)


def test_fanout_bounds_growth(dataset):
    small = ego_subgraph(dataset, 0, seed=0, hops=1, fanout=2)
    large = ego_subgraph(dataset, 0, seed=0, hops=2, fanout=10)
    assert small.num_nodes <= 1 + 2
    assert large.num_nodes >= small.num_nodes


def test_embed_nodes_matches_direct_encoder(dataset, encoder):
    index = NodeEmbeddingIndex(EmbeddingService(encoder), dataset, seed=0)
    node_ids = [0, 5, 11]
    served = index.embed_nodes(node_ids)
    assert served.shape[0] == 3
    batch = Batch([index.subgraph(node) for node in node_ids])
    encoder.eval()
    direct = encoder.graph_representations(batch).data
    assert np.allclose(served, direct, atol=1e-6)


def test_repeat_queries_hit_the_digest_cache(dataset, encoder):
    service = EmbeddingService(encoder)
    index = NodeEmbeddingIndex(service, dataset, seed=0)
    first = index.embed_nodes([1, 2, 3])
    assert service.stats()["cache"]["hits"] == 0
    second = index.embed_nodes([1, 2, 3])
    assert np.array_equal(first, second)
    stats = service.stats()["cache"]
    assert stats["hits"] == 3  # same ego-nets ⇒ same digests ⇒ all hits
    assert stats["misses"] == 3


def test_embed_nodes_rejects_empty(dataset, encoder):
    index = NodeEmbeddingIndex(EmbeddingService(encoder), dataset)
    with pytest.raises(ValueError):
        index.embed_nodes([])
