"""Helper utilities shared across test modules."""

from __future__ import annotations

import numpy as np

from repro.graph import Graph


def make_triangle(rng: np.random.Generator, features: int = 4,
                  y: int = 0) -> Graph:
    """A 3-cycle with random features (both edge orientations)."""
    edge_index = np.array([[0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2]])
    return Graph(rng.normal(size=(3, features)), edge_index, y=y)


def make_path(rng: np.random.Generator, n: int = 4, features: int = 4,
              y: int = 1) -> Graph:
    """A path graph on ``n`` nodes."""
    pairs = np.array([(i, i + 1) for i in range(n - 1)])
    edge_index = np.concatenate([pairs, pairs[:, ::-1]], axis=0).T
    return Graph(rng.normal(size=(n, features)), edge_index, y=y)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(x)
        flat[i] = original - eps
        lower = fn(x)
        flat[i] = original
        out[i] = (upper - lower) / (2 * eps)
    return grad
