"""Idempotent continuous-learning driver for the chaos suite.

Runs the full loop against a work directory and prints one JSON summary:

    recover -> ingest batch 1 -> bootstrap refresh -> ingest drifted
    batch 2 (revises g0/g1, adds 3 new graphs) -> refresh -> build a
    2-shard fleet from the live model -> embed the whole corpus

Every stage is idempotent (content-addressed batches, dedupe on append,
plan-pinned resumable refresh), so the script can be SIGKILLed at any
:func:`repro.validate.faults.crash_point` and simply re-run. The chaos
test compares the rerun's JSON to an uncrashed reference run: equality
means no committed batch was lost, the fine-tune history is
bit-identical, and every served row came from one model version.

Usage: python tests/ingest/_driver.py <workdir>
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_HERE = Path(__file__).resolve()
sys.path.insert(0, str(_HERE.parents[2] / "src"))
sys.path.insert(0, str(_HERE.parents[1]))

from ingest._corpus import make_corpus  # noqa: E402

from repro.core import SGCLConfig  # noqa: E402
from repro.fleet import build_fleet  # noqa: E402
from repro.ingest import (  # noqa: E402
    DatasetStore,
    IngestPipeline,
    RefreshController,
    read_live,
)
from repro.serve import ModelRegistry, load_trainer  # noqa: E402

CONFIG = SGCLConfig(hidden_dim=8, num_layers=2, batch_size=4, epochs=1,
                    seed=0, precompute_cache_dir=None)


def batch_one():
    return make_corpus(seed=0, n=6, ids="g")


def batch_two():
    revised = [g.copy() for g in batch_one()[:2]]
    for graph in revised:
        graph.x = graph.x + 4.0
    return revised + make_corpus(seed=1, n=3)


def main(workdir: str) -> dict:
    root = Path(workdir)
    store = DatasetStore(root / "store")
    store.recover()
    registry = ModelRegistry(root / "registry")
    controller = RefreshController(store, registry, epochs=2, config=CONFIG)
    pipeline = IngestPipeline(store, controller=controller)

    pipeline.ingest(batch_one())
    controller.refresh()  # bootstrap (no-op when already live)

    had_reference = read_live(store.root) is not None
    report = pipeline.ingest(batch_two())
    if had_reference and report.created:
        assert report.refresh_due, f"expected drift refresh, got {report}"
    controller.refresh()

    live = read_live(store.root)
    assert live is not None, "refresh never went live"
    router = build_fleet(registry.path(live["model"]), 2,
                         version=live["model"])
    corpus = store.load().graphs
    served = router.embed_detailed(corpus)
    history = load_trainer(registry.path(live["model"])).history

    head = store.resolve()
    return {
        "served_versions": sorted(served.served_versions()),
        "served_rows": len(served.embeddings),
        "live": {key: live[key] for key in
                 ("model", "dataset_version", "fingerprint", "epochs")},
        "live_has_kv": live["statistics"]["k_v"] is not None,
        "versions": store.versions(),
        "fingerprints": [m["fingerprint"] for m in
                         store.chain(head["version"])],
        "total_graphs": head["total_graphs"],
        "distinct_graphs": len(store.id_digests(head["version"])),
        "superseded": store.superseded_digests(1, head["version"]),
        "history": [{k: v for k, v in row.items() if k != "epoch_seconds"}
                    for row in history],
        "registered": sorted(entry["name"] for entry in registry.list()),
    }


if __name__ == "__main__":
    payload = main(sys.argv[1])
    print(json.dumps(payload, indent=2, sort_keys=True))
    # never crash *after* the summary: flushing is the last observable act
    sys.stdout.flush()
    os._exit(0)
