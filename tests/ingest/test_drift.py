"""Drift statistics: exact merging, σ-normalised scores, thresholds."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ingest import (
    DriftDetector,
    combine_statistics,
    corpus_statistics,
    summarize_statistics,
)
from repro.obs import Observer

from ._corpus import make_corpus


def shifted(graphs, delta: float):
    out = [g.copy() for g in graphs]
    for graph in out:
        graph.x = graph.x + delta
    return out


def test_statistics_roundtrip_json_and_match_numpy():
    graphs = make_corpus(seed=0, n=5)
    acc = corpus_statistics(graphs)
    assert json.loads(json.dumps(acc)) == acc
    summary = summarize_statistics(acc)
    stacked = np.concatenate([g.x for g in graphs], axis=0)
    np.testing.assert_allclose(summary["feature_mean"],
                               stacked.mean(axis=0), atol=1e-12)
    np.testing.assert_allclose(summary["feature_std"],
                               stacked.std(axis=0), atol=1e-9)
    degrees = np.concatenate([g.degrees() for g in graphs])
    assert summary["degree_mean"] == pytest.approx(degrees.mean())
    assert summary["degree_max"] == degrees.max()
    assert summary["k_v_mean"] is None  # no generator supplied


def test_statistics_reject_empty_and_mismatched_corpora():
    with pytest.raises(ValueError):
        corpus_statistics([])
    graphs = make_corpus(seed=0, n=2)
    bad = make_corpus(seed=1, n=1)
    bad[0].x = bad[0].x[:, :3]
    with pytest.raises(ValueError, match="dimension mismatch"):
        corpus_statistics(graphs + bad)


def test_combine_is_exact_and_batching_independent():
    a = make_corpus(seed=0, n=4)
    b = make_corpus(seed=1, n=3)
    merged = combine_statistics(corpus_statistics(a), corpus_statistics(b))
    direct = corpus_statistics(a + b)
    for key in ("num_graphs", "num_nodes", "degree_max"):
        assert merged[key] == direct[key]
    np.testing.assert_allclose(merged["feature_sum"], direct["feature_sum"])
    np.testing.assert_allclose(merged["feature_sumsq"],
                               direct["feature_sumsq"])
    assert merged["degree_sum"] == pytest.approx(direct["degree_sum"])


def test_combine_drops_partial_kv():
    acc = corpus_statistics(make_corpus(seed=0, n=2))
    with_kv = dict(acc, k_v={"sum": 1.0, "sumsq": 1.0, "count": 2})
    assert combine_statistics(acc, with_kv)["k_v"] is None
    both = combine_statistics(with_kv, with_kv)
    assert both["k_v"] == {"sum": 2.0, "sumsq": 2.0, "count": 4}


def test_detector_passes_undrifted_batches():
    reference = corpus_statistics(make_corpus(seed=0, n=40))
    batch = corpus_statistics(make_corpus(seed=7, n=40))
    report = DriftDetector(reference, observer=Observer()).check(batch)
    assert report.status == "ok" and report.ok
    assert report.max_score < 0.5
    assert set(report.scores) == {"feature", "degree"}


def test_detector_flags_shifted_features_and_reports_metrics():
    graphs = make_corpus(seed=0, n=6)
    observer = Observer()
    detector = DriftDetector(corpus_statistics(graphs), observer=observer)
    report = detector.check(corpus_statistics(shifted(graphs, 4.0)))
    assert report.status == "refresh" and report.refresh_due
    assert report.scores["feature"] >= 2.0
    assert observer.metrics.gauge("validate/drift_feature") == \
        report.scores["feature"]
    assert observer.metrics.gauge("validate/drift_max") == report.max_score
    assert observer.metrics.count("validate/drift_refresh") == 1
    assert json.loads(json.dumps(report.to_dict())) == report.to_dict()


def test_detector_warn_band_and_threshold_validation():
    graphs = make_corpus(seed=0, n=6)
    reference = corpus_statistics(graphs)
    drifted = corpus_statistics(shifted(graphs, 4.0))
    observer = Observer()
    wide = DriftDetector(reference, warn_threshold=0.5,
                         refresh_threshold=1e9, observer=observer)
    assert wide.check(drifted).status == "warn"
    assert observer.metrics.count("validate/drift_warn") == 1
    with pytest.raises(ValueError):
        DriftDetector(reference, warn_threshold=2.0, refresh_threshold=0.5)
    with pytest.raises(ValueError):
        DriftDetector(reference, warn_threshold=0.0)


def test_detector_rejects_incomparable_dimensions():
    reference = corpus_statistics(make_corpus(seed=0, n=3))
    narrow = make_corpus(seed=1, n=3)
    for graph in narrow:
        graph.x = graph.x[:, :3]
    with pytest.raises(ValueError, match="dimension mismatch"):
        DriftDetector(reference, observer=Observer()).check(
            corpus_statistics(narrow))


def test_kv_moments_with_generator_and_cache(tmp_path):
    from repro.core import SGCLConfig, SGCLTrainer
    from repro.runtime import PrecomputeCache

    graphs = make_corpus(seed=0, n=4)
    trainer = SGCLTrainer(graphs[0].x.shape[1],
                          SGCLConfig(hidden_dim=8, num_layers=2,
                                     precompute_cache_dir=None))
    cache = PrecomputeCache(tmp_path / "pc", namespace="vtest")
    acc = corpus_statistics(graphs, generator=trainer.model.generator,
                            cache=cache)
    assert acc["k_v"]["count"] == sum(g.num_nodes for g in graphs)
    assert acc["k_v"]["sum"] > 0
    # kv drift appears only when both sides carry moments
    detector = DriftDetector(acc, observer=Observer())
    report = detector.check(acc)
    assert report.scores["kv"] == pytest.approx(0.0, abs=1e-6)
    bare = detector.check(corpus_statistics(graphs))
    assert "kv" not in bare.scores
