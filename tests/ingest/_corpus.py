"""Seeded corpora for the ingest tests: small, distinct chain graphs."""

from __future__ import annotations

import numpy as np

from repro.graph import Graph

FEATURES = 6


def make_corpus(seed: int = 0, n: int = 6, *, shift: float = 0.0,
                ids: str | None = None) -> list[Graph]:
    """``n`` distinct chain graphs; ``ids`` tags ``graph_id=<ids><i>``."""
    rng = np.random.default_rng(seed)
    graphs = []
    for i in range(n):
        k = int(rng.integers(3, 8))
        pairs = np.array([(j, j + 1) for j in range(k - 1)])
        edge_index = np.concatenate([pairs, pairs[:, ::-1]], axis=0).T
        graph = Graph(rng.normal(size=(k, FEATURES)) + shift, edge_index,
                      y=int(i % 2))
        if ids is not None:
            graph.meta["graph_id"] = f"{ids}{i}"
        graphs.append(graph)
    return graphs
