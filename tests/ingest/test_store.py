"""DatasetStore: commits, dedupe, lineage, corruption and revisions."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ingest import DatasetStore, StoreCorruptionError, combine_statistics
from repro.obs import Observer

from ._corpus import make_corpus


@pytest.fixture()
def store(tmp_path) -> DatasetStore:
    return DatasetStore(tmp_path / "store", observer=Observer())


def test_append_commits_a_verifiable_version(store):
    graphs = make_corpus(seed=0, n=5)
    manifest, created = store.append(graphs, name="unit")
    assert created
    assert manifest["version"] == 1
    assert manifest["parent"] == 0
    assert manifest["parent_fingerprint"] == "0" * 16
    assert manifest["num_graphs"] == 5
    assert manifest["total_graphs"] == 5
    assert manifest["num_features"] == graphs[0].x.shape[1]
    assert len(manifest["graphs"]) == 5
    assert store.versions() == [1]
    assert store.batch_path(manifest["batch_fingerprint"]).exists()

    resolved = store.resolve()  # verify=True walks the whole chain
    assert resolved["fingerprint"] == manifest["fingerprint"]
    dataset = store.load()
    assert dataset.name == "unit-v000001"
    assert len(dataset.graphs) == 5
    np.testing.assert_array_equal(dataset.graphs[0].x, graphs[0].x)


def test_append_dedupes_replayed_batches(store):
    graphs = make_corpus(seed=0, n=4)
    first, created1 = store.append(graphs)
    again, created2 = store.append(graphs)
    assert created1 and not created2
    assert again["version"] == first["version"]
    assert store.versions() == [1]
    # dedupe=False forces a new version for identical content
    forced, created3 = store.append(graphs, dedupe=False)
    assert created3 and forced["version"] == 2


def test_chain_links_and_exact_cumulative_statistics(store):
    batch1 = make_corpus(seed=0, n=4)
    batch2 = make_corpus(seed=1, n=3)
    m1, _ = store.append(batch1)
    m2, _ = store.append(batch2)
    assert m2["parent"] == 1
    assert m2["parent_fingerprint"] == m1["fingerprint"]
    assert m2["total_graphs"] == 7
    expected = combine_statistics(m1["statistics"], m2["statistics"])
    assert m2["cumulative_statistics"] == expected
    assert [m["version"] for m in store.chain(2)] == [1, 2]


def test_corrupt_head_is_quarantined_and_resolution_falls_back(store):
    store.append(make_corpus(seed=0, n=3))
    m2, _ = store.append(make_corpus(seed=1, n=3))
    store.manifest_path(2).write_text("{not json")
    resolved = store.resolve()
    assert resolved["version"] == 1
    assert not store.manifest_path(2).exists()
    assert (store.quarantine_dir / store.manifest_path(2).name).exists()
    # the store keeps appending after the fallback — version ids stay
    # monotonic past the quarantined head
    m3, created = store.append(make_corpus(seed=2, n=3))
    assert created and m3["version"] == 2
    assert m3["parent_fingerprint"] == store.manifest(1)["fingerprint"]


def test_interior_corruption_is_fatal(store):
    store.append(make_corpus(seed=0, n=3))
    store.append(make_corpus(seed=1, n=3))
    store.manifest_path(1).write_text("{not json")
    with pytest.raises(StoreCorruptionError):
        store.resolve()


def test_tampered_batch_fails_verification_and_is_quarantined(store):
    manifest, _ = store.append(make_corpus(seed=0, n=3))
    batch = store.batch_path(manifest["batch_fingerprint"])
    other = DatasetStore(store.root.parent / "other")
    other_manifest, _ = other.append(make_corpus(seed=9, n=3))
    batch.write_bytes(
        other.batch_path(other_manifest["batch_fingerprint"]).read_bytes())
    with pytest.raises(StoreCorruptionError):
        store.load(verify=False)  # content check happens at load time too
    assert not batch.exists()  # quarantined, not deleted
    assert (store.quarantine_dir / batch.name).exists()


def test_recover_quarantines_orphan_batches(store):
    manifest, _ = store.append(make_corpus(seed=0, n=3))
    orphan = store.batches_dir / "batch-00000000deadbeef.npz"
    orphan.write_bytes(b"half-written")
    report = store.recover()
    assert report["quarantined_batches"] == [orphan.name]
    assert not orphan.exists()
    # the committed batch is untouched
    assert store.batch_path(manifest["batch_fingerprint"]).exists()
    assert len(store.load().graphs) == 3


def test_latest_revision_wins_and_superseded_digests(store):
    batch1 = make_corpus(seed=0, n=4, ids="g")
    store.append(batch1)
    # revise g1 and g2 (shifted features), re-submit g3 unchanged
    revised = [g.copy() for g in batch1[1:4]]
    for graph in revised[:2]:
        graph.x = graph.x + 4.0
    store.append(revised)

    dataset = store.load()
    assert len(dataset.graphs) == 4  # ids deduped, not 7 rows
    by_id = {meta["id"]: meta["digest"]
             for meta in store.resolve()["graphs"]}
    ids = store.id_digests(2)
    old = store.id_digests(1)
    assert ids["g1"] != old["g1"] and ids["g2"] != old["g2"]
    assert ids["g3"] == old["g3"]
    assert by_id["g1"] == ids["g1"]

    superseded = store.superseded_digests(1, 2)
    assert sorted(superseded) == sorted([old["g1"], old["g2"]])
    assert store.superseded_digests(2, 2) == []


def test_window_trains_on_recent_batches_only(store):
    for seed in (0, 1, 2):
        store.append(make_corpus(seed=seed, n=3))
    full = store.load()
    recent = store.load(window=2)
    assert len(full.graphs) == 9
    assert len(recent.graphs) == 6
    with pytest.raises(ValueError):
        store.load(window=0)


def test_missing_version_and_empty_store(store):
    with pytest.raises(FileNotFoundError):
        store.resolve()
    store.append(make_corpus(seed=0, n=3))
    with pytest.raises(KeyError):
        store.resolve(7)


def test_stats_summary(store):
    assert store.stats() == {"versions": 0, "total_graphs": 0, "latest": None}
    store.append(make_corpus(seed=0, n=4, ids="g"))
    store.append(make_corpus(seed=1, n=2))
    stats = store.stats()
    assert stats["versions"] == 2
    assert stats["latest"] == 2
    assert stats["total_graphs"] == 6
    assert stats["distinct_graphs"] == 6
    assert stats["quarantined"] == 0


def test_manifest_roundtrips_through_json(store):
    manifest, _ = store.append(make_corpus(seed=0, n=3))
    assert json.loads(json.dumps(manifest)) == manifest
