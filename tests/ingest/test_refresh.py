"""RefreshController + IngestPipeline: fine-tune, resume, swap, go-live."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLTrainer
from repro.fleet import build_fleet
from repro.ingest import (
    DatasetStore,
    IngestPipeline,
    RefreshController,
    read_live,
)
from repro.obs import Observer
from repro.serve import ModelRegistry, load_trainer
from repro.validate import ValidationError

from ._corpus import FEATURES, make_corpus

CONFIG = SGCLConfig(hidden_dim=8, num_layers=2, batch_size=4, epochs=1,
                    seed=0, precompute_cache_dir=None)


def make_controller(tmp_path, *, epochs=1, router=None, sub="a"):
    store = DatasetStore(tmp_path / sub / "store", observer=Observer())
    registry = ModelRegistry(tmp_path / sub / "registry")
    controller = RefreshController(store, registry, epochs=epochs,
                                   config=CONFIG, router=router,
                                   observer=Observer())
    return store, registry, controller


def test_bootstrap_refresh_goes_live_and_skips_when_current(tmp_path):
    store, registry, controller = make_controller(tmp_path)
    store.append(make_corpus(seed=0, n=6))

    outcome = controller.refresh()
    assert outcome.model == "sgcl-v000001"
    assert outcome.epochs_trained == 1
    assert not outcome.skipped and not outcome.interrupted
    assert "sgcl-v000001" in registry

    live = read_live(store.root)
    assert live["model"] == "sgcl-v000001"
    assert live["dataset_version"] == 1
    assert live["fingerprint"] == store.resolve()["fingerprint"]
    assert live["statistics"]["k_v"] is not None  # K_V under the new model

    again = controller.refresh()
    assert again.skipped and again.model == "sgcl-v000001"
    forced = controller.refresh(force=True)
    assert not forced.skipped


def test_refresh_fine_tunes_from_the_live_model(tmp_path):
    store, registry, controller = make_controller(tmp_path)
    store.append(make_corpus(seed=0, n=6))
    controller.refresh()
    store.append(make_corpus(seed=1, n=4))

    outcome = controller.refresh()
    assert outcome.model == "sgcl-v000002"
    assert outcome.epochs_trained == 1
    trainer = load_trainer(registry.path("sgcl-v000002"))
    # one bootstrap epoch + one fine-tune epoch, carried through history
    assert len(trainer.history) == 2
    live = read_live(store.root)
    assert live["dataset_version"] == 2 and live["epochs"] == 2


def test_interrupted_refresh_resumes_bit_identically(tmp_path):
    corpus = make_corpus(seed=3, n=6)

    store_a, registry_a, straight = make_controller(tmp_path, epochs=2,
                                                    sub="straight")
    store_a.append(corpus)
    reference = straight.refresh()

    # simulate a refresh killed after its first epoch: same plan, the
    # work dir holds a 1-epoch checkpoint, then the controller is re-run
    store_b, registry_b, resumed = make_controller(tmp_path, epochs=2,
                                                   sub="resumed")
    store_b.append(corpus)
    manifest = store_b.resolve()
    work_dir = resumed._work_dir(manifest["version"])
    work_dir.mkdir(parents=True)
    plan = resumed._plan(work_dir, dataset_version=manifest["version"],
                         parent_model=None, base_epochs=0)
    assert plan["target_epochs"] == 2
    trainer = SGCLTrainer(manifest["num_features"], CONFIG)
    trainer.pretrain(store_b.load().graphs, epochs=1, checkpoint_dir=work_dir)

    outcome = resumed.refresh()
    assert outcome.resumed
    assert outcome.epochs_trained == 1  # finished the plan, not restarted it

    ref = load_trainer(registry_a.path(reference.model))
    res = load_trainer(registry_b.path(outcome.model))
    def numeric(history):  # identical up to wall-clock timings
        return [{k: v for k, v in row.items() if k != "epoch_seconds"}
                for row in history]
    assert numeric(ref.history) == numeric(res.history)
    for key, value in ref.model.state_dict().items():
        np.testing.assert_array_equal(value, res.model.state_dict()[key])


def test_refresh_swaps_fleet_and_evicts_only_changed_rows(tmp_path):
    store, registry, controller = make_controller(tmp_path)
    batch1 = make_corpus(seed=0, n=6, ids="g")
    store.append(batch1)
    controller.refresh()  # no fleet yet: bootstrap

    router = build_fleet(registry.path("sgcl-v000001"), 2,
                         version="sgcl-v000001")
    controller.router = router
    graphs = store.load().graphs
    before = router.embed_detailed(graphs)
    assert before.served_versions() == {"sgcl-v000001"}

    # revise two graphs, leave one unchanged, and refresh through the fleet
    revised = [g.copy() for g in batch1[:3]]
    for graph in revised[:2]:
        graph.x = graph.x + 1.0
    store.append(revised)
    outcome = controller.refresh()
    assert outcome.model == "sgcl-v000002"
    assert outcome.invalidated == 2  # g0 and g1 only; g2 stayed warm

    after = router.embed_detailed(store.load().graphs)
    assert after.served_versions() == {"sgcl-v000002"}  # zero mixing
    assert len(after.embeddings) == 6


def test_pipeline_validates_drift_checks_and_refreshes(tmp_path):
    store, registry, controller = make_controller(tmp_path)
    pipeline = IngestPipeline(store, controller=controller,
                              observer=Observer())

    first = pipeline.ingest(make_corpus(seed=0, n=6))
    assert first.version == 1 and first.drift is None  # nothing live yet
    controller.refresh()

    dup = pipeline.ingest(make_corpus(seed=0, n=6))
    assert not dup.created and dup.action == "duplicate"

    shifted = [g.copy() for g in make_corpus(seed=1, n=4)]
    for graph in shifted:
        graph.x = graph.x + 4.0
    report = pipeline.ingest(shifted)
    assert report.version == 2
    assert report.refresh_due and report.drift.scores["feature"] >= 2.0
    assert "kv" in report.drift.scores  # live generator reached the store

    outcome = controller.refresh()
    assert outcome.model == "sgcl-v000002"
    assert read_live(store.root)["dataset_version"] == 2


def test_pipeline_drops_invalid_graphs_and_rejects_empty_batches(tmp_path):
    store, _, controller = make_controller(tmp_path)
    pipeline = IngestPipeline(store, observer=Observer())
    good = make_corpus(seed=0, n=3)
    bad = make_corpus(seed=1, n=1)
    bad[0].x = np.full_like(bad[0].x, np.nan)

    report = pipeline.ingest(good + bad)
    assert report.dropped == 1 and report.num_graphs == 3
    assert len(store.load().graphs) == 3
    with pytest.raises(ValidationError):
        pipeline.ingest([bad[0].copy()])
    strict = IngestPipeline(store, policy="raise", observer=Observer())
    with pytest.raises(ValidationError):
        strict.ingest(good + bad)


def test_watch_sweeps_spool_and_refreshes_on_drift(tmp_path):
    from repro.data import GraphDataset
    from repro.data.io import save_dataset

    store, registry, controller = make_controller(tmp_path)
    store.append(make_corpus(seed=0, n=6))
    controller.refresh()

    spool = tmp_path / "spool"
    spool.mkdir()
    shifted = [g.copy() for g in make_corpus(seed=1, n=4)]
    for graph in shifted:
        graph.x = graph.x + 4.0
    save_dataset(GraphDataset("stream", shifted, 2, "classification"),
                 spool / "batch-001.npz")

    pipeline = IngestPipeline(store, controller=controller,
                              observer=Observer())
    naps = []
    reports = pipeline.watch(spool, interval=0.01, max_cycles=2,
                             sleep=naps.append)
    assert len(reports) == 1 and reports[0].refresh_due
    assert naps == [0.01]  # sleeps between cycles, not after the last
    assert (spool / "ingested" / "batch-001.npz").exists()
    assert read_live(store.root)["model"] == "sgcl-v000002"
