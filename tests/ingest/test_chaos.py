"""Kill-anywhere chaos suite for the continuous-learning loop.

The driver (``_driver.py``) runs ingest → bootstrap refresh → drifted
ingest → refresh → serve, with named crash points between every commit
step. Each scenario arms exactly one point (``REPRO_CRASH_AT`` + a
one-shot marker dir), expects the hard kill (``os._exit(9)``), re-runs
the driver unchanged, and asserts the end state is indistinguishable
from a run that never crashed:

* the served rows all come from one model version (zero mixing),
* every committed batch survives (versions, fingerprint chain, graph
  counts), and
* the fine-tune history is bit-identical (wall-clock timings aside).

The crash matrix is expensive (two subprocess training runs per point),
so it rides behind ``REPRO_CHAOS=1`` like the other process-level chaos
tests; the ``crash_point`` unit test always runs.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.validate.faults import chaos_enabled

DRIVER = Path(__file__).resolve().parent / "_driver.py"
SRC = Path(__file__).resolve().parents[2] / "src"

CRASH_POINTS = [
    "ingest/before_batch_write",
    "ingest/batch_written",
    "ingest/committed",
    "refresh/epoch",
    "refresh/trained",
    "refresh/registered",
    "refresh/before_live",
    "refresh/live_written",
]


def run_driver(workdir: Path, *, crash_at: str | None = None,
               marker_dir: Path | None = None) -> subprocess.CompletedProcess:
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_CRASH_AT", "REPRO_CRASH_MARKER")}
    env["PYTHONPATH"] = str(SRC)
    if crash_at is not None:
        env["REPRO_CRASH_AT"] = crash_at
        env["REPRO_CRASH_MARKER"] = str(marker_dir)
    return subprocess.run([sys.executable, str(DRIVER), str(workdir)],
                          capture_output=True, text=True, env=env,
                          timeout=600)


def summary_of(proc: subprocess.CompletedProcess) -> dict:
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def reference(tmp_path_factory) -> dict:
    """End state of an uncrashed driver run."""
    proc = run_driver(tmp_path_factory.mktemp("reference"))
    return summary_of(proc)


def test_crash_point_fires_once_per_marker(tmp_path):
    """Unit semantics of crash_point: armed kill, then one-shot no-op."""
    code = ("from repro.validate.faults import crash_point; "
            "crash_point('unit/test'); print('survived')")
    env = {**os.environ, "PYTHONPATH": str(SRC),
           "REPRO_CRASH_AT": "unit/test",
           "REPRO_CRASH_MARKER": str(tmp_path)}
    first = subprocess.run([sys.executable, "-c", code], env=env,
                           capture_output=True, text=True, timeout=60)
    assert first.returncode == 9
    assert (tmp_path / "unit__test.crashed").exists()
    second = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True, timeout=60)
    assert second.returncode == 0 and "survived" in second.stdout
    # a different point name never fires
    env["REPRO_CRASH_AT"] = "unit/other"
    third = subprocess.run([sys.executable, "-c", code], env=env,
                           capture_output=True, text=True, timeout=60)
    assert third.returncode == 0


@pytest.mark.skipif(not chaos_enabled(),
                    reason="chaos tests run with REPRO_CHAOS=1")
@pytest.mark.parametrize("point", CRASH_POINTS,
                         ids=[p.replace("/", "-") for p in CRASH_POINTS])
def test_kill_at_point_then_rerun_matches_reference(point, tmp_path,
                                                    reference):
    workdir = tmp_path / "work"
    crashed = run_driver(workdir, crash_at=point, marker_dir=tmp_path / "m")
    assert crashed.returncode == 9, (
        f"crash point {point} never fired "
        f"(rc={crashed.returncode}): {crashed.stderr[-2000:]}")

    resumed = summary_of(
        run_driver(workdir, crash_at=point, marker_dir=tmp_path / "m"))
    assert resumed == reference

    # spelled-out invariants, so a failure names what broke
    assert len(resumed["served_versions"]) == 1          # zero mixing
    assert resumed["versions"] == reference["versions"]  # no lost commits
    assert resumed["fingerprints"] == reference["fingerprints"]
    assert resumed["history"] == reference["history"]    # bit-identical
