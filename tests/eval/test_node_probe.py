"""Node-level linear probe over ego-net embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import embed_nodes, node_linear_probe
from repro.gnn import GNNEncoder
from repro.sampling import load_node_dataset
from repro.serve.service import EmbeddingService


@pytest.fixture(scope="module")
def dataset():
    return load_node_dataset("community-1m", seed=0, scale=0.0005)


@pytest.fixture(scope="module")
def encoder(dataset):
    return GNNEncoder(dataset.num_features, 8, 2,
                      rng=np.random.default_rng(0))


def test_embed_nodes_shape_and_determinism(dataset, encoder):
    node_ids = [3, 17, 42, 3]
    first = embed_nodes(encoder, dataset, node_ids, seed=1)
    second = embed_nodes(encoder, dataset, node_ids, seed=1)
    assert first.shape[0] == 4
    assert np.array_equal(first, second)
    assert np.array_equal(first[0], first[3])  # same id, same ego-net


def test_embed_nodes_batching_invariant(dataset, encoder):
    node_ids = list(range(7))
    small = embed_nodes(encoder, dataset, node_ids, batch_size=2)
    large = embed_nodes(encoder, dataset, node_ids, batch_size=64)
    assert np.allclose(small, large, atol=1e-9)


def test_embed_nodes_via_service_matches_direct(dataset, encoder):
    direct = embed_nodes(encoder, dataset, [1, 2, 5])
    served = embed_nodes(None, dataset, [1, 2, 5],
                         service=EmbeddingService(encoder))
    assert np.allclose(direct, served, atol=1e-6)


def test_node_linear_probe_returns_sane_metrics(dataset, encoder):
    result = node_linear_probe(encoder, dataset, num_nodes=60, seed=0)
    assert set(result) == {"accuracy", "train_accuracy", "num_train",
                           "num_test"}
    assert result["num_train"] + result["num_test"] == 60
    assert 0.0 <= result["accuracy"] <= 1.0
    assert 0.0 <= result["train_accuracy"] <= 1.0


def test_node_linear_probe_validates_fraction(dataset, encoder):
    with pytest.raises(ValueError):
        node_linear_probe(encoder, dataset, num_nodes=20, train_fraction=1.5)


def test_node_linear_probe_filters_unlabeled_nodes(encoder):
    """NaN node labels must be dropped before the split (PR 9)."""
    noisy = load_node_dataset("community-1m", seed=0, scale=0.0005)
    labels = noisy.y.astype(np.float64)
    labels[::3] = np.nan  # unlabel a third of the corpus
    noisy.y = labels
    result = node_linear_probe(encoder, noisy, num_nodes=60, seed=0)
    # Counts reflect the labeled subset only, and the probe stays finite.
    assert result["num_train"] + result["num_test"] <= 60
    assert result["num_train"] >= 1 and result["num_test"] >= 1
    assert 0.0 <= result["accuracy"] <= 1.0
