"""Metrics and downstream protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GraphDataset, load_dataset, scaffold_split
from repro.eval import (
    accuracy,
    cross_validated_accuracy,
    embed_dataset,
    finetune_classifier,
    finetune_multitask,
    mean_std,
    multitask_roc_auc,
    roc_auc,
)
from repro.gnn import GNNEncoder


def test_accuracy_basic():
    assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == \
        pytest.approx(2 / 3)
    with pytest.raises(ValueError):
        accuracy(np.array([1]), np.array([1, 2]))


def test_roc_auc_perfect_and_inverted():
    y = np.array([0, 0, 1, 1])
    assert roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0
    assert roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0


def test_roc_auc_ties_give_half():
    y = np.array([0, 1, 0, 1])
    assert roc_auc(y, np.zeros(4)) == 0.5


def test_roc_auc_single_class_is_nan():
    assert np.isnan(roc_auc(np.ones(3), np.arange(3)))


def test_roc_auc_matches_pair_counting(rng):
    y = rng.integers(2, size=50)
    s = rng.normal(size=50)
    pairs = wins = 0
    for i in np.flatnonzero(y == 1):
        for j in np.flatnonzero(y == 0):
            pairs += 1
            wins += (s[i] > s[j]) + 0.5 * (s[i] == s[j])
    assert np.isclose(roc_auc(y, s), wins / pairs)


def test_multitask_auc_skips_nan_and_single_class():
    y = np.array([[1, np.nan, 1], [0, 1, 1], [1, 0, 1], [0, np.nan, 1]])
    s = np.array([[0.9, 0.5, 0.1], [0.1, 0.9, 0.2], [0.8, 0.1, 0.3],
                  [0.2, 0.6, 0.4]])
    value = multitask_roc_auc(y, s)
    # Task 2 is single-class and skipped; tasks 0 and 1 are perfect.
    assert value == 1.0


def test_multitask_auc_shape_mismatch():
    with pytest.raises(ValueError):
        multitask_roc_auc(np.zeros((2, 2)), np.zeros((2, 3)))


def test_mean_std():
    mean, std = mean_std([1.0, 3.0])
    assert mean == 2.0 and std == 1.0


def test_cross_validated_accuracy_on_separable(rng):
    emb = np.concatenate([rng.normal(-2, 0.5, (40, 6)),
                          rng.normal(2, 0.5, (40, 6))])
    labels = np.repeat([0, 1], 40)
    mean, std = cross_validated_accuracy(emb, labels, k=5,
                                         classifier="logreg")
    assert mean > 0.95
    mean_svm, _ = cross_validated_accuracy(emb, labels, k=5,
                                           classifier="svm")
    assert mean_svm > 0.95


def test_cross_validated_accuracy_unknown_classifier(rng):
    with pytest.raises(ValueError):
        cross_validated_accuracy(rng.normal(size=(10, 2)),
                                 np.repeat([0, 1], 5), k=2,
                                 classifier="forest")


def test_embed_dataset_shape_and_mode(rng):
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    encoder = GNNEncoder(dataset.num_features, 8, 2, rng=rng)
    emb = embed_dataset(encoder, dataset, batch_size=16)
    assert emb.shape == (len(dataset), 8)
    assert encoder.training  # restored to train mode afterwards


def test_finetune_multitask_restores_encoder(rng):
    dataset = load_dataset("BBBP", seed=0, scale=0.04)
    encoder = GNNEncoder(dataset.num_features, 8, 2, rng=rng)
    before = encoder.state_dict()
    splits = scaffold_split(dataset)
    auc = finetune_multitask(encoder, dataset, splits, epochs=2,
                             rng=np.random.default_rng(0))
    after = encoder.state_dict()
    assert all(np.allclose(before[k], after[k]) for k in before)
    assert 0.0 <= auc <= 1.0 or np.isnan(auc)


def test_finetune_multitask_rejects_classification(rng):
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    encoder = GNNEncoder(dataset.num_features, 8, 2, rng=rng)
    with pytest.raises(ValueError):
        finetune_multitask(encoder, dataset,
                           (np.arange(3), np.arange(3), np.arange(3)),
                           rng=np.random.default_rng(0))


def test_finetune_classifier_learns_separable(rng):
    dataset = load_dataset("MUTAG", seed=0, scale=0.3)
    encoder = GNNEncoder(dataset.num_features, 16, 2, rng=rng)
    n = len(dataset)
    indices = np.random.default_rng(0).permutation(n)
    train_idx, test_idx = indices[: int(0.8 * n)], indices[int(0.8 * n):]
    before = encoder.state_dict()
    acc = finetune_classifier(encoder, dataset, train_idx, test_idx,
                              epochs=8, rng=np.random.default_rng(1))
    after = encoder.state_dict()
    assert acc > 0.5  # beats coin flip on a 2-class planted-motif dataset
    assert all(np.allclose(before[k], after[k]) for k in before)


def test_finetune_classifier_skips_unlabeled_graphs(rng):
    """y=None graphs (NaN labels) must be filtered, not int-cast (PR 9)."""
    from _helpers import make_path, make_triangle

    graphs = []
    for i in range(12):
        maker = make_triangle if i % 2 == 0 else make_path
        graphs.append(maker(rng, y=i % 2))
    graphs.append(make_triangle(rng, y=None))
    graphs.append(make_path(rng, y=None))
    dataset = GraphDataset("toy", graphs, num_classes=2)
    encoder = GNNEncoder(4, 8, 2, rng=rng)
    indices = np.arange(len(graphs))
    acc = finetune_classifier(encoder, dataset, indices, indices,
                              epochs=2, batch_size=4,
                              rng=np.random.default_rng(0))
    assert np.isfinite(acc)
    assert 0.0 <= acc <= 1.0
