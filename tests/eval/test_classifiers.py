"""SVM (SMO) and logistic-regression classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import LogisticRegression, OneVsRestSVC, SVC, rbf_kernel


def _blobs(rng, centers, n=30, std=0.4):
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(center, std, size=(n, len(center))))
        ys.append(np.full(n, label))
    return np.concatenate(xs), np.concatenate(ys)


def test_svc_separable(rng):
    x, y = _blobs(rng, [(-2, -2), (2, 2)])
    model = SVC().fit(x, y)
    assert (model.predict(x) == y).mean() > 0.95


def test_svc_linear_kernel(rng):
    x, y = _blobs(rng, [(-2, -2), (2, 2)])
    model = SVC(kernel="linear").fit(x, y)
    assert (model.predict(x) == y).mean() > 0.95


def test_svc_rbf_solves_xor(rng):
    x = rng.uniform(-1, 1, size=(200, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
    model = SVC(C=10.0).fit(x, y)
    assert (model.predict(x) == y).mean() > 0.9


def test_svc_decision_function_sign_matches_predict(rng):
    x, y = _blobs(rng, [(-2, 0), (2, 0)])
    model = SVC().fit(x, y)
    scores = model.decision_function(x)
    assert ((scores >= 0).astype(int) == model.predict(x)).all()


def test_svc_unfitted_raises(rng):
    with pytest.raises(RuntimeError):
        SVC().predict(rng.normal(size=(2, 2)))


def test_svc_invalid_kernel():
    with pytest.raises(ValueError):
        SVC(kernel="poly")


def test_svc_deterministic_given_seed(rng):
    x, y = _blobs(rng, [(-1, 0), (1, 0)], std=1.0)
    a = SVC(seed=7).fit(x, y).decision_function(x)
    b = SVC(seed=7).fit(x, y).decision_function(x)
    assert np.allclose(a, b)


def test_rbf_kernel_formula(rng):
    a = rng.normal(size=(3, 2))
    k = rbf_kernel(a, a, gamma=0.5)
    assert np.allclose(np.diag(k), 1.0)
    manual = np.exp(-0.5 * np.sum((a[0] - a[1]) ** 2))
    assert np.isclose(k[0, 1], manual)


def test_ovr_multiclass(rng):
    x, y = _blobs(rng, [(-3, 0), (0, 3), (3, 0)])
    model = OneVsRestSVC().fit(x, y)
    assert (model.predict(x) == y).mean() > 0.9


def test_ovr_single_class(rng):
    x = rng.normal(size=(10, 2))
    y = np.zeros(10)
    model = OneVsRestSVC().fit(x, y)
    assert (model.predict(x) == 0).all()


def test_logreg_separable_and_multiclass(rng):
    x, y = _blobs(rng, [(-3, 0), (0, 3), (3, 0)])
    model = LogisticRegression().fit(x, y)
    assert (model.predict(x) == y).mean() > 0.95


def test_logreg_regularisation_shrinks_weights(rng):
    x, y = _blobs(rng, [(-2, 0), (2, 0)])
    loose = LogisticRegression(C=100.0).fit(x, y)
    tight = LogisticRegression(C=0.01).fit(x, y)
    assert np.abs(tight._weights[:-1]).sum() < np.abs(loose._weights[:-1]).sum()


def test_logreg_unfitted_raises(rng):
    with pytest.raises(RuntimeError):
        LogisticRegression().decision_function(rng.normal(size=(2, 2)))


def test_logreg_noninteger_labels(rng):
    x, y = _blobs(rng, [(-2, 0), (2, 0)])
    labels = np.where(y == 0, "neg", "pos")
    model = LogisticRegression().fit(x, labels)
    assert set(model.predict(x)) <= {"neg", "pos"}
