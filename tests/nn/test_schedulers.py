"""Learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealingLR,
    Parameter,
    StepLR,
    WarmupLR,
)


def _optimizer(lr=0.1):
    return Adam([Parameter(np.zeros(2))], lr=lr)


def test_step_lr_decays_at_boundaries():
    optimizer = _optimizer(0.1)
    scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
    rates = [scheduler.step() for _ in range(4)]
    assert rates == pytest.approx([0.1, 0.05, 0.05, 0.025])


def test_step_lr_validation():
    with pytest.raises(ValueError):
        StepLR(_optimizer(), step_size=0)


def test_cosine_lr_endpoints():
    optimizer = _optimizer(1.0)
    scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.1)
    rates = [scheduler.step() for _ in range(10)]
    assert rates[0] < 1.0
    assert rates[-1] == pytest.approx(0.1)
    assert all(a >= b for a, b in zip(rates, rates[1:]))


def test_cosine_lr_clamps_past_t_max():
    optimizer = _optimizer(1.0)
    scheduler = CosineAnnealingLR(optimizer, t_max=2, eta_min=0.0)
    for _ in range(5):
        last = scheduler.step()
    assert last == pytest.approx(0.0)


def test_warmup_then_constant():
    optimizer = _optimizer(0.8)
    scheduler = WarmupLR(optimizer, warmup_epochs=4)
    rates = [scheduler.step() for _ in range(6)]
    assert rates[:4] == pytest.approx([0.2, 0.4, 0.6, 0.8])
    assert rates[4:] == pytest.approx([0.8, 0.8])


def test_warmup_then_cosine():
    optimizer = _optimizer(1.0)
    inner = CosineAnnealingLR(optimizer, t_max=4, eta_min=0.0)
    scheduler = WarmupLR(optimizer, warmup_epochs=2, after=inner)
    rates = [scheduler.step() for _ in range(6)]
    assert rates[0] == pytest.approx(0.5)
    assert rates[1] == pytest.approx(1.0)
    assert rates[-1] == pytest.approx(0.0)


def test_scheduler_updates_optimizer_lr():
    optimizer = _optimizer(0.1)
    StepLR(optimizer, step_size=1, gamma=0.1).step()
    assert optimizer.lr == pytest.approx(0.01)
