"""Buffer (running-statistics) handling in state dicts.

Regression suite for a real bug: fine-tuning restored only trainable
parameters between downstream datasets, so BatchNorm running statistics
drifted cumulatively and degraded every later evaluation (visible as
Table IV's SGCL column collapsing). Buffers must round-trip through
``state_dict``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm1d, MLP
from repro.tensor import Tensor


def test_state_dict_contains_buffers(rng):
    mlp = MLP([4, 8, 2], rng=rng, batch_norm=True)
    keys = set(mlp.state_dict())
    assert any(k.endswith("running_mean") for k in keys)
    assert any(k.endswith("running_var") for k in keys)


def test_buffers_round_trip_restores_behaviour(rng):
    mlp = MLP([4, 8, 2], rng=rng, batch_norm=True)
    mlp.eval()
    x = Tensor(rng.normal(size=(8, 4)))
    before = mlp(x).data.copy()
    state = mlp.state_dict()
    mlp.train()
    for _ in range(20):
        mlp(Tensor(rng.normal(7, 3, size=(32, 4))))  # drift running stats
    mlp.eval()
    drifted = mlp(x).data
    assert not np.allclose(before, drifted)
    mlp.load_state_dict(state)
    assert np.allclose(mlp(x).data, before)


def test_loaded_buffers_are_copies(rng):
    bn = BatchNorm1d(3)
    state = bn.state_dict()
    bn.load_state_dict(state)
    bn.running_mean += 5.0
    assert np.allclose(state["running_mean"], 0.0)


def test_missing_buffer_key_rejected(rng):
    bn = BatchNorm1d(3)
    state = bn.state_dict()
    del state["running_mean"]
    with pytest.raises(KeyError):
        bn.load_state_dict(state)


def test_finetune_multitask_restores_running_stats(rng):
    """The original failure: sequential fine-tunes must not leak BN drift."""
    from repro.data import load_dataset, scaffold_split
    from repro.eval import finetune_multitask
    from repro.gnn import GNNEncoder

    dataset = load_dataset("BBBP", seed=0, scale=0.04)
    encoder = GNNEncoder(dataset.num_features, 8, 2, rng=rng)
    buffers_before = {k: v.copy() for k, v in encoder.named_buffers()}
    splits = scaffold_split(dataset)
    finetune_multitask(encoder, dataset, splits, epochs=2,
                       rng=np.random.default_rng(0))
    for key, value in encoder.named_buffers():
        assert np.allclose(buffers_before[key], value), key
