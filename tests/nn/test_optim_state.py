"""Optimizer state_dict round trips: checkpointed resume is bit-exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, mse_loss
from repro.tensor import Tensor


def _make_problem(seed=0):
    rng = np.random.default_rng(seed)
    model = Linear(3, 2, rng=rng)
    x = Tensor(rng.normal(size=(8, 3)))
    y = Tensor(rng.normal(size=(8, 2)))
    return model, x, y


def _step(model, optimizer, x, y):
    loss = mse_loss(model(x), y)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()


@pytest.mark.parametrize("make_optimizer", [
    lambda params: Adam(params, lr=0.05),
    lambda params: SGD(params, lr=0.05, momentum=0.9),
])
def test_resume_matches_uninterrupted_run(make_optimizer):
    model, x, y = _make_problem()
    optimizer = make_optimizer(model.parameters())
    for _ in range(3):
        _step(model, optimizer, x, y)
    param_snapshot = model.state_dict()
    opt_snapshot = optimizer.state_dict()
    for _ in range(2):
        _step(model, optimizer, x, y)
    uninterrupted = [p.data.copy() for p in model.parameters()]

    model.load_state_dict(param_snapshot)
    optimizer.load_state_dict(opt_snapshot)
    for _ in range(2):
        _step(model, optimizer, x, y)
    resumed = [p.data.copy() for p in model.parameters()]
    for a, b in zip(uninterrupted, resumed):
        assert np.array_equal(a, b)


def test_state_dict_returns_copies():
    model, x, y = _make_problem()
    optimizer = Adam(model.parameters())
    _step(model, optimizer, x, y)
    state = optimizer.state_dict()
    state["m0"][:] = 123.0
    assert not np.array_equal(optimizer._m[0], state["m0"])


def test_adam_state_requires_step():
    model, _, _ = _make_problem()
    optimizer = Adam(model.parameters())
    state = optimizer.state_dict()
    del state["step"]
    with pytest.raises(KeyError, match="step"):
        optimizer.load_state_dict(state)


def test_mismatched_keys_rejected():
    model, _, _ = _make_problem()
    optimizer = Adam(model.parameters())
    state = optimizer.state_dict()
    state["m99"] = np.zeros(3)
    with pytest.raises(KeyError, match="unexpected"):
        optimizer.load_state_dict(state)


def test_mismatched_shapes_rejected():
    model, _, _ = _make_problem()
    optimizer = SGD(model.parameters(), momentum=0.9)
    state = optimizer.state_dict()
    first = next(iter(state))
    state[first] = np.zeros((99, 99))
    with pytest.raises(ValueError, match="shape mismatch"):
        optimizer.load_state_dict(state)


def test_sgd_round_trip_without_momentum():
    model, x, y = _make_problem()
    optimizer = SGD(model.parameters(), lr=0.05)
    _step(model, optimizer, x, y)
    state = optimizer.state_dict()
    optimizer.load_state_dict(state)
