"""Layer semantics: shapes, gradients, train/eval behaviour, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Dropout,
    Embedding,
    Identity,
    Linear,
    MLP,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor


def test_linear_shape_and_formula(rng):
    layer = Linear(4, 3, rng=rng)
    x = rng.normal(size=(5, 4))
    out = layer(Tensor(x))
    assert out.shape == (5, 3)
    assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)


def test_linear_without_bias(rng):
    layer = Linear(4, 3, rng=rng, bias=False)
    assert layer.bias is None
    assert len(layer.parameters()) == 1


def test_linear_gradients_flow_to_weight_and_bias(rng):
    layer = Linear(4, 3, rng=rng)
    layer(Tensor(rng.normal(size=(5, 4)))).sum().backward()
    assert layer.weight.grad is not None
    assert np.allclose(layer.bias.grad, 5.0)


def test_mlp_structure_and_forward(rng):
    mlp = MLP([4, 8, 2], rng=rng)
    out = mlp(Tensor(rng.normal(size=(3, 4))))
    assert out.shape == (3, 2)


def test_mlp_rejects_too_few_dims(rng):
    with pytest.raises(ValueError):
        MLP([4], rng=rng)


def test_mlp_with_batchnorm_has_bn_parameters(rng):
    mlp = MLP([4, 8, 2], rng=rng, batch_norm=True)
    names = [name for name, _ in mlp.named_parameters()]
    assert any("gamma" in n for n in names)


def test_batchnorm_normalises_in_train_mode(rng):
    bn = BatchNorm1d(3)
    x = rng.normal(5.0, 3.0, size=(64, 3))
    out = bn(Tensor(x))
    assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-6)
    assert np.allclose(out.data.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_running_stats_update(rng):
    bn = BatchNorm1d(2, momentum=0.5)
    x = rng.normal(10.0, 1.0, size=(32, 2))
    bn(Tensor(x))
    assert bn.running_mean.mean() > 1.0


def test_batchnorm_eval_uses_running_stats(rng):
    bn = BatchNorm1d(2)
    for _ in range(20):
        bn(Tensor(rng.normal(4.0, 2.0, size=(64, 2))))
    bn.eval()
    x = rng.normal(4.0, 2.0, size=(16, 2))
    out = bn(Tensor(x))
    expected = (x - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
    assert np.allclose(out.data, expected, atol=1e-8)


def test_batchnorm_single_row_passthrough_in_train(rng):
    bn = BatchNorm1d(2)
    out = bn(Tensor(rng.normal(size=(1, 2))))
    assert np.isfinite(out.data).all()


def test_dropout_train_scales_and_eval_identity(rng):
    dropout = Dropout(0.5, rng=rng)
    x = Tensor(np.ones((100, 10)))
    out = dropout(x)
    kept = out.data[out.data != 0]
    assert np.allclose(kept, 2.0)  # inverted dropout scaling
    dropout.eval()
    assert np.allclose(dropout(x).data, 1.0)


def test_dropout_zero_probability_is_identity(rng):
    dropout = Dropout(0.0, rng=rng)
    x = Tensor(rng.normal(size=(5, 3)))
    assert dropout(x) is x


def test_dropout_rejects_invalid_probability(rng):
    with pytest.raises(ValueError):
        Dropout(1.0, rng=rng)


def test_embedding_lookup_and_bounds(rng):
    table = Embedding(10, 4, rng=rng)
    out = table(np.array([0, 3, 9]))
    assert out.shape == (3, 4)
    with pytest.raises(IndexError):
        table(np.array([10]))


def test_sequential_order_and_len(rng):
    seq = Sequential(Linear(4, 4, rng=rng), ReLU(), Identity())
    assert len(seq) == 3
    out = seq(Tensor(rng.normal(size=(2, 4))))
    assert (out.data >= 0).all()


def test_state_dict_roundtrip(rng):
    a = MLP([4, 8, 2], rng=rng, batch_norm=True)
    b = MLP([4, 8, 2], rng=np.random.default_rng(999), batch_norm=True)
    b.load_state_dict(a.state_dict())
    x = Tensor(rng.normal(size=(3, 4)))
    a.eval()
    b.eval()
    assert np.allclose(a(x).data, b(x).data)


def test_state_dict_rejects_mismatched_keys(rng):
    a = Linear(4, 3, rng=rng)
    with pytest.raises(KeyError):
        a.load_state_dict({"weight": np.zeros((4, 3))})


def test_state_dict_rejects_mismatched_shape(rng):
    a = Linear(4, 3, rng=rng)
    state = a.state_dict()
    state["weight"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        a.load_state_dict(state)


def test_train_eval_propagates_to_submodules(rng):
    mlp = MLP([4, 8, 2], rng=rng, batch_norm=True)
    mlp.eval()
    assert all(not m.training for m in mlp.modules())
    mlp.train()
    assert all(m.training for m in mlp.modules())


def test_weight_norm_positive_and_zero_grads(rng):
    mlp = MLP([4, 8, 2], rng=rng)
    norm = mlp.weight_norm()
    assert norm.item() > 0
    norm.backward()
    assert mlp.net[0].weight.grad is not None
    mlp.zero_grad()
    assert mlp.net[0].weight.grad is None


def test_num_parameters_counts_everything(rng):
    layer = Linear(4, 3, rng=rng)
    assert layer.num_parameters() == 4 * 3 + 3
