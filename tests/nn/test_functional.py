"""Loss-function correctness against hand computations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    binary_cross_entropy_with_logits,
    cosine_similarity_matrix,
    cross_entropy,
    l2_normalize,
    mse_loss,
)
from repro.tensor import Tensor


def test_cross_entropy_matches_manual(rng):
    logits = rng.normal(size=(4, 3))
    targets = np.array([0, 2, 1, 2])
    loss = cross_entropy(Tensor(logits), targets)
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    expected = -log_probs[np.arange(4), targets].mean()
    assert np.isclose(loss.item(), expected)


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    loss = cross_entropy(Tensor(logits), np.array([0, 1]))
    assert loss.item() < 1e-6


def test_bce_with_logits_matches_manual(rng):
    logits = rng.normal(size=(4, 2))
    targets = rng.integers(2, size=(4, 2)).astype(float)
    loss = binary_cross_entropy_with_logits(Tensor(logits), targets)
    expected = (np.logaddexp(0, logits) - logits * targets).mean()
    assert np.isclose(loss.item(), expected)


def test_bce_mask_excludes_missing_labels(rng):
    logits = rng.normal(size=(3, 2))
    targets = np.zeros((3, 2))
    mask = np.array([[1, 0], [1, 1], [0, 0]], dtype=float)
    loss = binary_cross_entropy_with_logits(Tensor(logits), targets,
                                            mask=mask)
    elementwise = np.logaddexp(0, logits) - logits * targets
    expected = (elementwise * mask).sum() / mask.sum()
    assert np.isclose(loss.item(), expected)


def test_bce_all_masked_is_finite(rng):
    logits = rng.normal(size=(2, 2))
    loss = binary_cross_entropy_with_logits(
        Tensor(logits), np.zeros((2, 2)), mask=np.zeros((2, 2)))
    assert np.isfinite(loss.item())


def test_mse_loss(rng):
    a = rng.normal(size=(3, 2))
    b = rng.normal(size=(3, 2))
    assert np.isclose(mse_loss(Tensor(a), b).item(), ((a - b) ** 2).mean())


def test_l2_normalize_unit_rows(rng):
    x = Tensor(rng.normal(size=(5, 4)))
    norms = np.linalg.norm(l2_normalize(x).data, axis=1)
    assert np.allclose(norms, 1.0)


def test_l2_normalize_zero_row_is_safe():
    out = l2_normalize(Tensor(np.zeros((1, 3))))
    assert np.isfinite(out.data).all()


def test_cosine_similarity_matrix_bounds(rng):
    a = Tensor(rng.normal(size=(4, 6)))
    b = Tensor(rng.normal(size=(3, 6)))
    sims = cosine_similarity_matrix(a, b).data
    assert sims.shape == (4, 3)
    assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()


def test_cosine_self_similarity_is_one(rng):
    a = Tensor(rng.normal(size=(3, 5)))
    sims = cosine_similarity_matrix(a, a).data
    assert np.allclose(np.diag(sims), 1.0)


# ----------------------------------------------------------------------
# NaN-label handling (PR 9 regressions)
# ----------------------------------------------------------------------
def test_masked_bce_ignores_nan_targets(rng):
    logits = rng.normal(size=(4, 3))
    targets = rng.integers(2, size=(4, 3)).astype(float)
    targets[1, 2] = np.nan
    targets[3, 0] = np.nan
    mask = np.isfinite(targets)

    logits_t = Tensor(logits, requires_grad=True)
    loss = binary_cross_entropy_with_logits(logits_t, targets, mask=mask)
    # The loss must equal the mean BCE over the labeled entries alone —
    # before the fix, 0 * NaN poisoned the whole sum.
    per_entry = np.logaddexp(0, logits) - logits * np.nan_to_num(targets)
    expected = per_entry[mask].sum() / mask.sum()
    assert np.isfinite(loss.item())
    assert np.isclose(loss.item(), expected)
    loss.backward()
    assert np.isfinite(logits_t.grad).all()
    # Masked entries get zero gradient (their sigmoid term is multiplied
    # by the zero mask weight... but the softplus side is masked too).
    assert np.allclose(logits_t.grad[~mask], 0.0)


def test_masked_bce_matches_unmasked_when_all_valid(rng):
    logits = rng.normal(size=(3, 2))
    targets = rng.integers(2, size=(3, 2)).astype(float)
    masked = binary_cross_entropy_with_logits(
        Tensor(logits), targets, mask=np.ones_like(targets, dtype=bool))
    unmasked = binary_cross_entropy_with_logits(Tensor(logits), targets)
    assert np.isclose(masked.item(), unmasked.item())


def test_cross_entropy_rejects_non_finite_targets(rng):
    logits = Tensor(rng.normal(size=(3, 2)))
    targets = np.array([0.0, np.nan, 1.0])
    with pytest.raises(ValueError, match="non-finite"):
        cross_entropy(logits, targets)


def test_cross_entropy_accepts_float_labels_when_finite(rng):
    logits = rng.normal(size=(3, 2))
    as_float = cross_entropy(Tensor(logits), np.array([0.0, 1.0, 1.0]))
    as_int = cross_entropy(Tensor(logits), np.array([0, 1, 1]))
    assert np.isclose(as_float.item(), as_int.item())
