"""Optimiser behaviour: convergence on convex toys, weight decay, momentum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, SGD, Parameter


def quadratic_loss(param: Parameter, target: np.ndarray):
    diff = param - target
    return (diff * diff).sum()


@pytest.mark.parametrize("optimizer_cls,kwargs", [
    (SGD, {"lr": 0.1}),
    (SGD, {"lr": 0.05, "momentum": 0.9}),
    (Adam, {"lr": 0.1}),
])
def test_converges_on_quadratic(optimizer_cls, kwargs, rng):
    target = rng.normal(size=5)
    param = Parameter(np.zeros(5))
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(200):
        loss = quadratic_loss(param, target)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert np.allclose(param.data, target, atol=1e-2)


def test_weight_decay_shrinks_parameters():
    param = Parameter(np.ones(3))
    optimizer = SGD([param], lr=0.1, weight_decay=1.0)
    # Zero loss gradient: only decay acts.
    (param * 0.0).sum().backward()
    optimizer.step()
    assert (np.abs(param.data) < 1.0).all()


def test_adam_weight_decay():
    param = Parameter(np.full(3, 10.0))
    optimizer = Adam([param], lr=0.5, weight_decay=1.0)
    for _ in range(50):
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
    assert (np.abs(param.data) < 10.0).all()


def test_step_skips_parameters_without_grad():
    used = Parameter(np.ones(2))
    unused = Parameter(np.ones(2))
    optimizer = SGD([used, unused], lr=0.1)
    (used * 2.0).sum().backward()
    optimizer.step()
    assert np.allclose(unused.data, 1.0)
    assert not np.allclose(used.data, 1.0)


def test_zero_grad_clears_all():
    param = Parameter(np.ones(2))
    optimizer = SGD([param], lr=0.1)
    (param * 2.0).sum().backward()
    optimizer.zero_grad()
    assert param.grad is None


def test_empty_parameter_list_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_momentum_accelerates_along_consistent_gradient():
    plain = Parameter(np.zeros(1))
    momentum = Parameter(np.zeros(1))
    opt_plain = SGD([plain], lr=0.01)
    opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
    for _ in range(10):
        for param, opt in [(plain, opt_plain), (momentum, opt_momentum)]:
            opt.zero_grad()
            (param * -1.0).sum().backward()  # constant gradient −1
            opt.step()
    assert momentum.data[0] > plain.data[0]
