"""ModelRegistry tests: directory-backed named checkpoints."""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import make_triangle

from repro.gnn import GNNEncoder
from repro.serve import ModelRegistry


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


@pytest.fixture
def encoder(rng):
    return GNNEncoder(4, 8, 2, rng=rng)


def test_register_get_list(registry, encoder, rng):
    registry.register("sgcl-mutag", encoder, metadata={"dataset": "MUTAG"})
    assert "sgcl-mutag" in registry
    entries = registry.list()
    assert [e["name"] for e in entries] == ["sgcl-mutag"]
    assert entries[0]["model_class"] == "GNNEncoder"
    assert entries[0]["metadata"]["dataset"] == "MUTAG"
    service = registry.get("sgcl-mutag")
    g = make_triangle(rng)
    assert service.embed([g]).shape == (1, 8)


def test_get_memoises_services(registry, encoder, rng):
    registry.register("m", encoder)
    first = registry.get("m")
    g = make_triangle(rng)
    first.embed([g])
    second = registry.get("m")
    assert second is first
    second.embed([g])  # shared cache: no second forward pass
    assert second.telemetry.count("encoder_graphs") == 1


def test_get_memoises_per_kwargs(registry, encoder, rng):
    registry.register("m", encoder)
    default = registry.get("m")
    small = registry.get("m", cache_size=2)
    assert small is not default
    assert small.cache_size == 2
    assert registry.get("m", cache_size=2) is small
    # Kwarg order must not matter to the memoisation key.
    a = registry.get("m", cache_size=8, max_batch_size=16)
    b = registry.get("m", max_batch_size=16, cache_size=8)
    assert a is b


def test_get_memoises_unhashable_kwargs_by_identity(registry, encoder):
    from repro.obs.metrics import MetricsRegistry

    registry.register("m", encoder)
    telemetry = MetricsRegistry()
    first = registry.get("m", telemetry=telemetry)
    assert registry.get("m", telemetry=telemetry) is first
    assert registry.get("m", telemetry=MetricsRegistry()) is not first


def test_evict_forces_checkpoint_reread(registry, encoder, rng):
    registry.register("m", encoder)
    first = registry.get("m")
    assert registry.evict("m") == 1
    assert registry.get("m") is not first
    assert registry.evict("nope") == 0


def test_evict_all(registry, rng):
    registry.register("a", GNNEncoder(4, 8, 2, rng=np.random.default_rng(1)))
    registry.register("b", GNNEncoder(4, 8, 2, rng=np.random.default_rng(2)))
    registry.get("a")
    registry.get("a", cache_size=2)
    registry.get("b")
    assert registry.evict() == 3
    assert registry.evict() == 0


def test_multiple_models_served_side_by_side(registry, rng):
    a = GNNEncoder(4, 8, 2, rng=np.random.default_rng(1))
    b = GNNEncoder(4, 8, 2, rng=np.random.default_rng(2))
    registry.register("a", a)
    registry.register("b", b)
    assert [e["name"] for e in registry.list()] == ["a", "b"]
    g = make_triangle(rng)
    assert not np.array_equal(registry.get("a").embed([g]),
                              registry.get("b").embed([g]))


def test_duplicate_register_requires_overwrite(registry, encoder):
    registry.register("m", encoder)
    with pytest.raises(FileExistsError, match="overwrite"):
        registry.register("m", encoder)
    registry.register("m", encoder, overwrite=True)


def test_overwrite_drops_memoised_service(registry, rng):
    a = GNNEncoder(4, 8, 2, rng=np.random.default_rng(1))
    b = GNNEncoder(4, 8, 2, rng=np.random.default_rng(2))
    registry.register("m", a)
    g = make_triangle(rng)
    before = registry.get("m").embed([g])
    registry.register("m", b, overwrite=True)
    after = registry.get("m").embed([g])
    assert not np.array_equal(before, after)


def test_unknown_and_invalid_names(registry):
    with pytest.raises(KeyError, match="no registered model"):
        registry.get("nope")
    with pytest.raises(ValueError, match="invalid model name"):
        registry.path("../escape")
    with pytest.raises(ValueError, match="invalid model name"):
        registry.path("")


def test_unregister(registry, encoder):
    registry.register("m", encoder)
    registry.unregister("m")
    assert "m" not in registry
    assert registry.list() == []
    with pytest.raises(KeyError):
        registry.unregister("m")
