"""Tests for the serving telemetry substrate."""

from __future__ import annotations

import math

from repro.serve import Telemetry


def test_counters_increment_and_default_to_zero():
    t = Telemetry()
    assert t.count("requests") == 0
    t.increment("requests")
    t.increment("requests", 4)
    assert t.count("requests") == 5


def test_observe_and_percentiles():
    t = Telemetry()
    for value in range(1, 101):
        t.observe("latency", value)
    assert t.percentile("latency", 50) == 50.5
    summary = t.summary("latency")
    assert summary["count"] == 100
    assert summary["mean"] == 50.5
    assert summary["p95"] > summary["p50"]
    assert summary["max"] == 100


def test_empty_series_yields_nan():
    t = Telemetry()
    assert math.isnan(t.percentile("nothing", 50))
    summary = t.summary("nothing")
    assert summary["count"] == 0
    assert math.isnan(summary["p50"])


def test_timer_records_positive_duration():
    t = Telemetry()
    with t.timer("block"):
        sum(range(1000))
    summary = t.summary("block")
    assert summary["count"] == 1
    assert summary["p50"] >= 0.0


def test_reservoir_is_bounded():
    t = Telemetry(max_samples=10)
    for value in range(100):
        t.observe("series", value)
    summary = t.summary("series")
    assert summary["count"] == 10
    assert summary["max"] == 99  # most recent values survive


def test_snapshot_and_reset():
    t = Telemetry()
    t.increment("hits")
    t.observe("sizes", 3)
    snapshot = t.snapshot()
    assert snapshot["counters"] == {"hits": 1}
    assert snapshot["series"]["sizes"]["count"] == 1
    t.reset()
    assert t.count("hits") == 0
    assert t.snapshot() == {"counters": {}, "series": {}}
