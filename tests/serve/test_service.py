"""EmbeddingService tests: cache correctness, micro-batching, telemetry."""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import make_path, make_triangle

from repro.eval import embed_dataset
from repro.gnn import GNNEncoder
from repro.serve import EmbeddingService, graph_digest


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng, y=i % 2) for i in range(5)] + \
        [make_path(rng, n=3 + i % 4, y=i % 2) for i in range(5)]


@pytest.fixture
def encoder(rng):
    return GNNEncoder(4, 8, 2, rng=rng)


@pytest.fixture
def service(encoder):
    return EmbeddingService(encoder, max_batch_size=4)


# ----------------------------------------------------------------------
# Digest
# ----------------------------------------------------------------------
def test_digest_ignores_labels_but_not_content(rng):
    g = make_triangle(rng)
    relabelled = g.copy()
    relabelled.y = 99
    assert graph_digest(g) == graph_digest(relabelled)
    other = g.copy()
    other.x = g.x + 1.0
    assert graph_digest(g) != graph_digest(other)


# ----------------------------------------------------------------------
# Cache correctness
# ----------------------------------------------------------------------
def test_hit_returns_same_array_as_miss(service, graphs):
    first = service.embed(graphs[:3])
    second = service.embed(graphs[:3])
    assert np.array_equal(first, second)
    assert service.telemetry.count("cache_hits") == 3
    assert service.telemetry.count("cache_misses") == 3


def test_second_pass_runs_zero_encoder_forwards(service, graphs):
    service.embed(graphs)
    batches_after_first = service.telemetry.count("encoder_batches")
    graphs_after_first = service.telemetry.count("encoder_graphs")
    again = service.embed(graphs)
    assert service.telemetry.count("encoder_batches") == batches_after_first
    assert service.telemetry.count("encoder_graphs") == graphs_after_first
    stats = service.stats()
    assert stats["cache"]["hit_rate"] == 0.5
    assert stats["latency"]["requests"] == 2
    assert stats["latency"]["p95_ms"] >= stats["latency"]["p50_ms"] >= 0.0
    assert again.shape == (len(graphs), 8)


def test_stats_expose_lookups_and_occupancy(service, graphs):
    service.embed(graphs[:3])
    cache = service.stats()["cache"]
    assert cache["lookups"] == cache["hits"] + cache["misses"] == 3
    assert cache["occupancy"] == cache["size"] / cache["capacity"]
    assert 0.0 < cache["occupancy"] <= 1.0


def test_cache_counters_are_monotonic_across_clear(encoder, graphs):
    service = EmbeddingService(encoder, cache_size=4)
    service.embed(graphs)          # 10 misses, evictions beyond 4 entries
    service.embed(graphs[-4:])     # the LRU survivors: hits
    before = service.stats()["cache"]
    assert before["hits"] > 0
    assert before["misses"] == len(graphs)
    assert before["evictions"] == len(graphs) - 4
    service.clear_cache()
    after = service.stats()["cache"]
    # Clearing drops entries, never history: the counters are monotonic.
    assert after["size"] == 0 and after["occupancy"] == 0.0
    assert (after["hits"], after["misses"], after["evictions"],
            after["lookups"]) == (before["hits"], before["misses"],
                                  before["evictions"], before["lookups"])
    service.embed(graphs[:2])
    assert service.stats()["cache"]["misses"] == before["misses"] + 2


def test_mutating_returned_array_does_not_poison_cache(service, graphs):
    original = service.embed(graphs[:1]).copy()
    handed_out = service.embed(graphs[:1])
    handed_out[:] = 0.0
    assert np.array_equal(service.embed(graphs[:1]), original)


def test_duplicates_within_request_embed_once(service, rng):
    g = make_triangle(rng)
    rows = service.embed([g, g, g])
    assert service.telemetry.count("encoder_graphs") == 1
    assert np.array_equal(rows[0], rows[1])
    assert np.array_equal(rows[1], rows[2])


def test_matches_embed_dataset_with_same_chunking(encoder, graphs):
    service = EmbeddingService(encoder, max_batch_size=128)
    expected = embed_dataset(encoder, graphs, batch_size=128)
    assert np.allclose(service.embed(graphs), expected, atol=0)


def test_embed_dataset_service_path(encoder, graphs):
    service = EmbeddingService(encoder, max_batch_size=128)
    direct = embed_dataset(encoder, graphs, batch_size=128)
    cached = embed_dataset(encoder, graphs, service=service)
    assert np.allclose(cached, direct, atol=0)
    with pytest.raises(ValueError, match="cache"):
        embed_dataset(encoder, graphs, service=service, node_weight=None)


# ----------------------------------------------------------------------
# Batching & eviction
# ----------------------------------------------------------------------
def test_requests_are_chunked_to_max_batch_size(service, graphs):
    service.embed(graphs)  # 10 distinct graphs, max_batch_size=4
    assert service.telemetry.count("encoder_batches") == 3
    assert service.telemetry.count("encoder_graphs") == 10
    assert service.stats()["encoder"]["mean_batch_size"] == pytest.approx(
        10 / 3)


def test_lru_eviction_bounds_cache(encoder, graphs):
    service = EmbeddingService(encoder, cache_size=2, max_batch_size=4)
    service.embed(graphs[:5])
    assert service.cache_len <= 2
    assert service.telemetry.count("cache_evictions") >= 3


def test_request_larger_than_cache_still_correct(encoder, graphs):
    tiny = EmbeddingService(encoder, cache_size=1, max_batch_size=2)
    big = EmbeddingService(encoder, max_batch_size=2)
    assert np.array_equal(tiny.embed(graphs[:4]), big.embed(graphs[:4]))


# ----------------------------------------------------------------------
# Micro-batch queue
# ----------------------------------------------------------------------
def test_submit_coalesces_into_one_batch(service, graphs):
    pending = [service.submit(g) for g in graphs[:3]]
    assert service.telemetry.count("encoder_batches") == 0
    service.flush()
    assert service.telemetry.count("encoder_batches") == 1
    rows = np.stack([p.result() for p in pending])
    assert np.array_equal(rows, service.embed(graphs[:3]))


def test_queue_auto_flushes_at_max_batch_size(encoder, graphs):
    service = EmbeddingService(encoder, max_batch_size=2)
    service.submit(graphs[0])
    assert service.telemetry.count("encoder_batches") == 0
    service.submit(graphs[1])
    assert service.telemetry.count("encoder_batches") == 1


def test_pending_result_flushes_lazily(service, graphs):
    pending = service.submit(graphs[0])
    assert service.telemetry.count("encoder_batches") == 0
    row = pending.result()
    assert service.telemetry.count("encoder_batches") == 1
    assert np.array_equal(row, service.embed([graphs[0]])[0])


def test_submit_of_cached_graph_skips_queue(service, graphs):
    service.embed([graphs[0]])
    pending = service.submit(graphs[0])
    pending.result()
    assert service.telemetry.count("encoder_batches") == 1
    assert service.telemetry.count("flushes") == 0


# ----------------------------------------------------------------------
# Misc API
# ----------------------------------------------------------------------
def test_service_freezes_encoder(encoder):
    encoder.train()
    EmbeddingService(encoder)
    assert not encoder.training


def test_empty_request_rejected(service):
    with pytest.raises(ValueError, match="at least one graph"):
        service.embed([])


def test_single_graph_conveniences(service, rng):
    g = make_triangle(rng)
    assert np.array_equal(service.embed(g)[0], service.embed_one(g))


def test_invalid_configuration_rejected(encoder):
    with pytest.raises(ValueError):
        EmbeddingService(encoder, cache_size=0)
    with pytest.raises(ValueError):
        EmbeddingService(encoder, max_batch_size=0)
