"""Checkpoint round-trip tests: save → load → identical behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from _helpers import make_path, make_triangle

from repro.baselines import make_method
from repro.core import SGCLConfig, SGCLTrainer
from repro.eval import embed_dataset
from repro.gnn import GNNEncoder
from repro.serve import (
    SCHEMA_VERSION,
    EmbeddingService,
    load_checkpoint,
    load_trainer,
    read_checkpoint_header,
    save_checkpoint,
)


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng, y=i % 2) for i in range(4)] + \
        [make_path(rng, n=4 + i % 3, y=i % 2) for i in range(4)]


def _trained_sgcl(graphs, epochs=1):
    trainer = SGCLTrainer(4, SGCLConfig(epochs=epochs, batch_size=4, seed=0))
    trainer.pretrain(graphs)
    return trainer


def test_sgcl_round_trip_identical_embeddings(tmp_path, graphs):
    trainer = _trained_sgcl(graphs)
    path = trainer.save_checkpoint(tmp_path / "sgcl.npz")
    service = EmbeddingService.from_checkpoint(path, max_batch_size=128)
    expected = embed_dataset(trainer.encoder, graphs, batch_size=128)
    assert np.allclose(service.embed(graphs), expected, atol=0)


def test_baseline_round_trip_identical_embeddings(tmp_path, graphs):
    model = make_method("GraphCL", 4, seed=0)
    model.pretrain(graphs, epochs=1)
    path = model.save_checkpoint(tmp_path / "graphcl")
    assert path.suffix == ".npz"
    encoder = load_checkpoint(path).build_encoder()
    expected = embed_dataset(model.encoder, graphs, batch_size=128)
    served = EmbeddingService(encoder, max_batch_size=128).embed(graphs)
    assert np.allclose(served, expected, atol=0)


def test_state_dict_round_trip_after_optimizer_steps(graphs):
    """Params + BatchNorm buffers restore bit-exact eval behaviour."""
    trainer = _trained_sgcl(graphs)
    encoder = trainer.encoder
    snapshot = encoder.state_dict()
    before = embed_dataset(encoder, graphs)
    trainer.pretrain(graphs, epochs=1)  # moves params and running stats
    assert not np.array_equal(embed_dataset(encoder, graphs), before)
    encoder.load_state_dict(snapshot)
    assert np.array_equal(embed_dataset(encoder, graphs), before)
    # BatchNorm running statistics are part of the snapshot.
    assert any("running_mean" in key for key in snapshot)


def test_resume_is_bit_exact(tmp_path, graphs):
    trainer = _trained_sgcl(graphs)
    path = trainer.save_checkpoint(tmp_path / "resume.npz")
    resumed = load_trainer(path)
    assert resumed.history == trainer.history
    trainer.pretrain(graphs, epochs=1)
    resumed.pretrain(graphs, epochs=1)
    original = trainer.model.state_dict()
    restored = resumed.model.state_dict()
    assert all(np.array_equal(original[k], restored[k]) for k in original)


def test_in_dim_validation(tmp_path, graphs):
    trainer = _trained_sgcl(graphs)
    path = trainer.save_checkpoint(tmp_path / "dim.npz")
    checkpoint = load_checkpoint(path)
    assert checkpoint.in_dim == 4
    other = SGCLTrainer(5, trainer.config)
    with pytest.raises(ValueError, match="in_dim"):
        checkpoint.restore(other.model)


def test_schema_version_validation(tmp_path):
    import json

    bogus = {"schema_version": SCHEMA_VERSION + 1}
    np.savez(tmp_path / "bad.npz", __header__=np.frombuffer(
        json.dumps(bogus).encode(), dtype=np.uint8))
    with pytest.raises(ValueError, match="schema version"):
        load_checkpoint(tmp_path / "bad.npz")


def test_header_metadata(tmp_path, rng):
    import repro

    encoder = GNNEncoder(4, 8, 2, rng=rng)
    path = save_checkpoint(tmp_path / "enc.npz", encoder,
                           metadata={"note": "hello"})
    header = read_checkpoint_header(path)
    assert header["repro_version"] == repro.__version__
    assert header["schema_version"] == SCHEMA_VERSION
    assert header["metadata"] == {"note": "hello"}
    assert header["encoder_spec"]["hidden_dim"] == 8
    assert header["config"] is None


def test_bare_encoder_checkpoint_rejected_by_load_trainer(tmp_path, rng):
    encoder = GNNEncoder(4, 8, 2, rng=rng)
    path = save_checkpoint(tmp_path / "enc.npz", encoder)
    with pytest.raises(ValueError, match="SGCLConfig"):
        load_trainer(path)


def test_restore_without_optimizer_state_raises(tmp_path, graphs, rng):
    encoder = GNNEncoder(4, 8, 2, rng=rng)
    path = save_checkpoint(tmp_path / "enc.npz", encoder)
    checkpoint = load_checkpoint(path)
    from repro.nn import Adam

    fresh = GNNEncoder(4, 8, 2, rng=rng)
    with pytest.raises(ValueError, match="optimizer state"):
        checkpoint.restore(fresh, Adam(fresh.parameters()))


def test_checkpoint_creates_parent_directories(tmp_path, graphs):
    trainer = _trained_sgcl(graphs)
    path = trainer.save_checkpoint(tmp_path / "deep" / "nested" / "ck.npz")
    assert path.exists()


def test_periodic_and_best_checkpoints(tmp_path, graphs):
    trainer = SGCLTrainer(4, SGCLConfig(epochs=2, batch_size=4, seed=0))
    trainer.pretrain(graphs, checkpoint_dir=tmp_path / "ck", save_every=2)
    names = sorted(p.name for p in (tmp_path / "ck").iterdir())
    assert "best.npz" in names
    assert "epoch-0002.npz" in names
    assert "epoch-0001.npz" not in names
    # best.npz is loadable and serves the best-loss epoch's encoder
    EmbeddingService.from_checkpoint(tmp_path / "ck" / "best.npz")


def test_baseline_periodic_checkpoints(tmp_path, graphs):
    model = make_method("GraphCL", 4, seed=0)
    model.pretrain(graphs, epochs=2, checkpoint_dir=tmp_path / "ck",
                   save_every=1)
    names = sorted(p.name for p in (tmp_path / "ck").iterdir())
    assert {"best.npz", "epoch-0001.npz", "epoch-0002.npz"} <= set(names)
    header = read_checkpoint_header(tmp_path / "ck" / "best.npz")
    assert header["metadata"]["method"] == "GraphCL"
