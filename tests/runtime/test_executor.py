"""ParallelExecutor: determinism, seeding, retries, error propagation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Observer
from repro.runtime import (
    ParallelExecutionError,
    ParallelExecutor,
    resolve_workers,
    task_seeds,
)


def _square(x):
    return x * x


def _seeded_draw(item, seed):
    rng = np.random.default_rng(seed)
    return float(rng.normal()) + item


def _boom(x):
    raise ValueError(f"boom on {x}")


class _FlakyOnce:
    """Fails until a marker file exists; picklable across processes."""

    def __init__(self, marker):
        self.marker = str(marker)

    def __call__(self, x):
        from pathlib import Path

        marker = Path(self.marker)
        if not marker.exists():
            marker.write_text("tried")
            raise RuntimeError("transient failure")
        return x + 1


# ----------------------------------------------------------------------
# Worker resolution
# ----------------------------------------------------------------------
def test_resolve_workers_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(2) == 2


def test_resolve_workers_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers(None) == 3


def test_resolve_workers_defaults_serial(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1


def test_resolve_workers_ignores_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    assert resolve_workers(None) == 1


def test_resolve_workers_clamps_nonpositive():
    assert resolve_workers(0) == 1
    assert resolve_workers(-3) == 1


# ----------------------------------------------------------------------
# Map semantics
# ----------------------------------------------------------------------
def test_map_preserves_order_serial_and_parallel():
    items = list(range(23))
    expected = [x * x for x in items]
    assert ParallelExecutor(workers=1).map(_square, items) == expected
    assert ParallelExecutor(workers=2).map(_square, items) == expected


def test_map_empty_and_single_item():
    assert ParallelExecutor(workers=2).map(_square, []) == []
    assert ParallelExecutor(workers=2).map(_square, [3]) == [9]


def test_map_explicit_chunk_size():
    items = list(range(10))
    result = ParallelExecutor(workers=2, chunk_size=3).map(_square, items)
    assert result == [x * x for x in items]


def test_serial_fallback_accepts_closures():
    # Closures cannot cross a process boundary, but the serial path runs
    # them in-process.
    offset = 5
    assert ParallelExecutor(workers=1).map(lambda x: x + offset, [1, 2]) \
        == [6, 7]


# ----------------------------------------------------------------------
# Per-task seeding
# ----------------------------------------------------------------------
def test_task_seeds_deterministic_and_distinct():
    a = task_seeds(123, 8)
    b = task_seeds(123, 8)
    assert a == b
    assert len(set(a)) == 8
    assert task_seeds(124, 8) != a


def test_task_seeds_prefix_stable():
    """Seed of task i must not depend on how many tasks follow it."""
    assert task_seeds(7, 3) == task_seeds(7, 5)[:3]


def test_map_seeded_identical_across_worker_counts():
    serial = ParallelExecutor(workers=1).map_seeded(_seeded_draw,
                                                    [1, 2, 3, 4], 42)
    parallel = ParallelExecutor(workers=2).map_seeded(_seeded_draw,
                                                      [1, 2, 3, 4], 42)
    assert serial == parallel


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_error_propagates_with_remote_traceback(workers):
    with pytest.raises(ParallelExecutionError) as excinfo:
        ParallelExecutor(workers=workers, retries=0).map(_boom, [1, 2, 3])
    assert "ValueError" in str(excinfo.value)
    assert "boom" in excinfo.value.remote_traceback


@pytest.mark.parametrize("workers", [1, 2])
def test_bounded_retries_recover_transient_failures(workers, tmp_path):
    job = _FlakyOnce(tmp_path / "marker")
    result = ParallelExecutor(workers=workers, retries=2,
                              chunk_size=10).map(job, [1, 2, 3])
    assert result == [2, 3, 4]


def test_retries_exhausted_raises():
    with pytest.raises(ParallelExecutionError):
        ParallelExecutor(workers=1, retries=3).map(_boom, [1])


def _boom_on_three(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_exhaustion_counts_attempts(workers):
    """`runtime/retries` matches the error's attempt count in both paths."""
    observer = Observer()
    with observer.activate():
        with pytest.raises(ParallelExecutionError) as excinfo:
            ParallelExecutor(workers=workers, chunk_size=1,
                             retries=2).map(_boom_on_three, [1, 2, 3, 4])
    assert excinfo.value.attempts == 3
    assert "boom on 3" in excinfo.value.remote_traceback
    assert observer.metrics.count("runtime/retries") == excinfo.value.attempts


def test_backoff_schedule_respected_between_retries():
    from repro.resilience import RetryPolicy

    sleeps = []
    policy = RetryPolicy(max_attempts=9, base_delay=0.2, jitter=0.0,
                         sleep=sleeps.append)
    with pytest.raises(ParallelExecutionError):
        ParallelExecutor(workers=1, retries=2,
                         backoff=policy).map(_boom, [1])
    assert sleeps == [0.2, 0.4]


def test_negative_retries_rejected():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=1, retries=-1)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_map_records_span_and_task_counter():
    observer = Observer()
    with observer.activate():
        ParallelExecutor(workers=1).map(_square, [1, 2, 3])
    assert observer.metrics.count("runtime/tasks") == 3
    assert observer.metrics.gauge("runtime/workers") == 1
    assert "runtime/map" in observer.tracer.aggregate()
