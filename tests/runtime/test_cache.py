"""PrecomputeCache: content addressing, atomicity, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Observer
from repro.runtime import PrecomputeCache, config_hash, graph_fingerprint

from _helpers import make_triangle

SPEC = {"kind": "unit", "version": 1}


@pytest.fixture
def cache(tmp_path):
    return PrecomputeCache(tmp_path / "precompute")


def test_roundtrip(cache, triangle):
    arrays = {"a": np.arange(5.0), "b": np.eye(2)}
    cache.put(triangle, SPEC, arrays)
    loaded = cache.get(triangle, SPEC)
    assert set(loaded) == {"a", "b"}
    assert np.array_equal(loaded["a"], arrays["a"])
    assert np.array_equal(loaded["b"], arrays["b"])


def test_miss_returns_none(cache, triangle):
    assert cache.get(triangle, SPEC) is None
    assert cache.stats() == {"hits": 0, "misses": 1, "entries": 0}


def test_content_addressing_on_graph(cache, triangle):
    cache.put(triangle, SPEC, {"a": np.ones(3)})
    perturbed = triangle.copy()
    perturbed.x[0, 0] += 1e-9
    assert cache.get(perturbed, SPEC) is None
    assert graph_fingerprint(perturbed) != graph_fingerprint(triangle)


def test_content_addressing_on_spec(cache, triangle):
    cache.put(triangle, SPEC, {"a": np.ones(3)})
    assert cache.get(triangle, {**SPEC, "version": 2}) is None


def test_config_hash_key_order_invariant():
    assert config_hash({"a": 1, "b": [2, 3]}) \
        == config_hash({"b": [2, 3], "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


def test_config_hash_accepts_numpy_values():
    spec_a = {"w": np.arange(4.0), "lr": np.float64(0.1)}
    spec_b = {"w": np.arange(4.0), "lr": 0.1}
    assert config_hash(spec_a) == config_hash(spec_b)
    spec_c = {"w": np.arange(4.0) + 1, "lr": 0.1}
    assert config_hash(spec_c) != config_hash(spec_a)


def test_get_or_compute_runs_once(cache, triangle):
    calls = []

    def compute():
        calls.append(1)
        return {"v": np.zeros(2)}

    first = cache.get_or_compute(triangle, SPEC, compute)
    second = cache.get_or_compute(triangle, SPEC, compute)
    assert len(calls) == 1
    assert np.array_equal(first["v"], second["v"])


def test_corrupt_entry_counts_as_miss(cache, triangle):
    path = cache.put(triangle, SPEC, {"a": np.ones(1)})
    path.write_bytes(b"not an npz archive")
    assert cache.get(triangle, SPEC) is None
    # A fresh put repairs the entry.
    cache.put(triangle, SPEC, {"a": np.ones(1)})
    assert cache.get(triangle, SPEC) is not None


def test_reserved_entry_name_rejected(cache, triangle):
    with pytest.raises(ValueError):
        cache.put(triangle, SPEC, {"__spec__": np.ones(1)})


def test_clear(cache, triangle):
    cache.put(triangle, SPEC, {"a": np.ones(1)})
    cache.put(triangle, {**SPEC, "version": 2}, {"a": np.ones(1)})
    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0


def test_hit_miss_metrics_on_ambient_observer(cache, triangle):
    observer = Observer()
    with observer.activate():
        cache.get(triangle, SPEC)
        cache.put(triangle, SPEC, {"a": np.ones(1)})
        cache.get(triangle, SPEC)
    assert observer.metrics.count("runtime/cache_miss") == 1
    assert observer.metrics.count("runtime/cache_hit") == 1


def test_namespace_isolates_dataset_versions(tmp_path, triangle):
    """Same graph + spec under a new dataset-version namespace must miss.

    The refresh loop namespaces the K_V cache by the dataset version's
    fingerprint; without this, a refreshed model could silently reuse
    constants precomputed under the previous version's generator.
    """
    v1 = PrecomputeCache(tmp_path / "c", namespace="fp-v1")
    v1.put(triangle, SPEC, {"k": np.arange(3.0)})
    assert v1.get(triangle, SPEC) is not None

    v2 = PrecomputeCache(tmp_path / "c", namespace="fp-v2")
    assert v2.get(triangle, SPEC) is None  # new version: cold by design
    v2.put(triangle, SPEC, {"k": np.zeros(3)})
    assert np.array_equal(v1.get(triangle, SPEC)["k"], np.arange(3.0))

    # un-namespaced handles keep their historical keys (back-compat)
    bare = PrecomputeCache(tmp_path / "c")
    assert bare.get(triangle, SPEC) is None
    assert bare.stats()["entries"] == 2  # both versions live side by side


def test_entries_shared_across_handles(tmp_path, triangle):
    """Content addressing makes the cache safely shareable on disk."""
    writer = PrecomputeCache(tmp_path / "c")
    writer.put(triangle, SPEC, {"a": np.arange(3.0)})
    reader = PrecomputeCache(tmp_path / "c")
    loaded = reader.get(triangle, SPEC)
    assert np.array_equal(loaded["a"], np.arange(3.0))
