"""PrefetchLoader: order preservation, determinism, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader
from repro.runtime import PrefetchLoader

from _helpers import make_triangle


def _graphs(rng, n=12):
    return [make_triangle(rng, y=i % 2) for i in range(n)]


def test_prefetch_matches_loader_order_unshuffled(rng):
    graphs = _graphs(rng)
    plain = [b.x for b in DataLoader(graphs, 4)]
    prefetched = [b.x for b in PrefetchLoader(DataLoader(graphs, 4))]
    assert len(plain) == len(prefetched)
    for a, b in zip(plain, prefetched):
        assert np.array_equal(a, b)


def test_prefetch_preserves_shuffle_stream_across_epochs(rng):
    graphs = _graphs(rng)
    plain = DataLoader(graphs, 5, shuffle=True, rng=np.random.default_rng(9))
    wrapped = PrefetchLoader(
        DataLoader(graphs, 5, shuffle=True, rng=np.random.default_rng(9)),
        prefetch=3)
    for _ in range(3):  # same permutation sequence epoch after epoch
        for a, b in zip(plain, wrapped):
            assert np.array_equal(a.x, b.x)


def test_prefetch_len_delegates(rng):
    loader = DataLoader(_graphs(rng), 5)
    assert len(PrefetchLoader(loader)) == len(loader)


def test_prefetch_bound_validated(rng):
    with pytest.raises(ValueError):
        PrefetchLoader(DataLoader(_graphs(rng), 4), prefetch=0)


def test_prefetch_early_break_then_reiterate(rng):
    """Abandoning an epoch stops the producer and the next epoch is clean."""
    graphs = _graphs(rng, 20)
    wrapped = PrefetchLoader(DataLoader(graphs, 2), prefetch=1)
    for i, _ in enumerate(wrapped):
        if i == 1:
            break
    # A fresh iteration starts from batch 0 again.
    first = next(iter(wrapped))
    assert np.array_equal(first.x, next(iter(DataLoader(graphs, 2))).x)


def test_close_stops_producer_after_partial_consumption(rng):
    """A consumer that stops after one batch must not leak a blocked thread."""
    import threading

    graphs = _graphs(rng, 20)
    loader = PrefetchLoader(DataLoader(graphs, 2), prefetch=1)
    iterator = iter(loader)
    next(iterator)                       # producer now blocked on a full queue
    assert loader._epochs
    loader.close()
    assert not loader._epochs
    assert not any(t.name == "repro-prefetch" and t.is_alive()
                   for t in threading.enumerate())
    loader.close()                       # idempotent
    # The loader is still usable for a fresh epoch afterwards.
    first = next(iter(loader))
    assert np.array_equal(first.x, next(iter(DataLoader(graphs, 2))).x)


def test_context_manager_closes_producers(rng):
    import threading

    graphs = _graphs(rng, 20)
    with PrefetchLoader(DataLoader(graphs, 2), prefetch=1) as loader:
        for i, _ in enumerate(loader):
            if i == 1:
                break
    assert not loader._epochs
    assert not any(t.name == "repro-prefetch" and t.is_alive()
                   for t in threading.enumerate())


class _ExplodingLoader:
    def __init__(self, graphs, fail_at):
        self.graphs = graphs
        self.fail_at = fail_at

    def __len__(self):
        return len(self.graphs)

    def __iter__(self):
        from repro.graph import Batch

        for i, graph in enumerate(self.graphs):
            if i == self.fail_at:
                raise RuntimeError("loader exploded")
            yield Batch([graph])


def test_prefetch_propagates_producer_exception(rng):
    wrapped = PrefetchLoader(_ExplodingLoader(_graphs(rng), fail_at=2))
    seen = []
    with pytest.raises(RuntimeError, match="loader exploded"):
        for batch in wrapped:
            seen.append(batch)
    assert len(seen) == 2  # batches before the failure were delivered


def test_prefetch_sgcl_pretrain_equivalence():
    """config.prefetch_batches changes wall-time only, never the history."""
    from repro.core import SGCLConfig, SGCLTrainer

    rng = np.random.default_rng(0)
    graphs = [make_triangle(rng, y=i % 2) for i in range(24)]
    plain = SGCLTrainer(4, SGCLConfig(epochs=2, batch_size=8, seed=1))
    prefetched = SGCLTrainer(
        4, SGCLConfig(epochs=2, batch_size=8, seed=1, prefetch_batches=2))
    history_a = plain.pretrain(graphs)
    history_b = prefetched.pretrain(graphs)
    for row_a, row_b in zip(history_a, history_b):
        assert row_a["loss"] == row_b["loss"]
        assert row_a["k_v_mean"] == row_b["k_v_mean"]
