"""Parallel-vs-serial bit-equivalence — the runtime determinism contract.

With a fixed seed, every ``workers`` value must produce bit-identical
results: worker counts change wall-time, never numbers (ISSUE 3
acceptance criterion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lipschitz import LipschitzConstantGenerator
from repro.eval import cross_validated_accuracy
from repro.gnn import GNNEncoder
from repro.runtime import (
    ParallelExecutor,
    PrecomputeCache,
    precompute_node_constants,
    precompute_statics,
)

from _helpers import make_path, make_triangle


def _corpus(rng, n=10):
    return [make_triangle(rng) if i % 2 else make_path(rng)
            for i in range(n)]


def _generator(mode, seed=0):
    rng = np.random.default_rng(seed)
    encoder = GNNEncoder(4, 8, num_layers=2, rng=rng)
    return LipschitzConstantGenerator(encoder, rng=rng, mode=mode)


# ----------------------------------------------------------------------
# Executor-level equivalence
# ----------------------------------------------------------------------
def _norm_job(graph):
    return float(np.linalg.norm(graph.x))


def test_executor_map_bit_identical(rng):
    graphs = _corpus(rng)
    serial = ParallelExecutor(workers=1).map(_norm_job, graphs)
    parallel = ParallelExecutor(workers=2).map(_norm_job, graphs)
    assert serial == parallel


# ----------------------------------------------------------------------
# Lipschitz precompute (the K_V statistics of the acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["approx", "exact"])
def test_node_constants_bit_identical(rng, mode):
    graphs = _corpus(rng)
    generator = _generator(mode)
    serial = precompute_node_constants(generator, graphs, workers=1)
    parallel = precompute_node_constants(generator, graphs, workers=2)
    assert len(serial) == len(parallel) == len(graphs)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a, b)  # bit-identical, not just close


def test_node_constants_cache_round_trip_identical(rng, tmp_path):
    graphs = _corpus(rng)
    generator = _generator("approx")
    cache = PrecomputeCache(tmp_path / "kv")
    fresh = precompute_node_constants(generator, graphs, workers=2,
                                      cache=cache)
    cached = precompute_node_constants(generator, graphs, workers=2,
                                       cache=cache)
    for a, b in zip(fresh, cached):
        assert np.array_equal(a, b)
    assert cache.stats()["hits"] == len(graphs)


def test_node_constants_cache_respects_parameter_change(rng, tmp_path):
    """Updating the generator must never serve stale constants."""
    graphs = _corpus(rng, 4)
    cache = PrecomputeCache(tmp_path / "kv")
    precompute_node_constants(_generator("approx", seed=0), graphs,
                              cache=cache)
    precompute_node_constants(_generator("approx", seed=1), graphs,
                              cache=cache)
    assert cache.stats()["misses"] == 2 * len(graphs)


def test_statics_bit_identical(rng):
    graphs = _corpus(rng)
    serial = precompute_statics(graphs, workers=1)
    parallel = precompute_statics(graphs, workers=2)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a["topology_distance"], b["topology_distance"])
        assert np.array_equal(a["normalized_adjacency"],
                              b["normalized_adjacency"])


# ----------------------------------------------------------------------
# Evaluation protocols
# ----------------------------------------------------------------------
@pytest.mark.parametrize("classifier", ["logreg", "svm"])
def test_cross_validation_bit_identical(classifier):
    rng = np.random.default_rng(17)
    embeddings = rng.normal(size=(48, 6))
    labels = rng.integers(0, 2, size=48)
    serial = cross_validated_accuracy(embeddings, labels, k=4,
                                      classifier=classifier, seed=5,
                                      workers=1)
    parallel = cross_validated_accuracy(embeddings, labels, k=4,
                                        classifier=classifier, seed=5,
                                        workers=2)
    assert serial == parallel


def test_harness_seed_fanout_bit_identical():
    from repro.bench import run_unsupervised

    kwargs = dict(seeds=[0, 1], scale=0.08, epochs=1, folds=3)
    serial = run_unsupervised("GraphCL", "MUTAG", workers=1, **kwargs)
    parallel = run_unsupervised("GraphCL", "MUTAG", workers=2, **kwargs)
    assert serial == parallel
