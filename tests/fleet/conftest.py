"""Shared fixtures for the fleet tests: a corpus, a checkpoint, a reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GNNEncoder
from repro.graph import Graph
from repro.serve import EmbeddingService, save_checkpoint

FEATURES = 4


def make_corpus(seed: int = 0, n: int = 24) -> list[Graph]:
    """Distinct chain graphs (unique digests) with seeded features."""
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(n):
        k = int(rng.integers(3, 8))
        pairs = np.array([(i, i + 1) for i in range(k - 1)])
        edge_index = np.concatenate([pairs, pairs[:, ::-1]], axis=0).T
        graphs.append(Graph(rng.normal(size=(k, FEATURES)), edge_index, y=0))
    return graphs


@pytest.fixture()
def corpus() -> list[Graph]:
    return make_corpus()


@pytest.fixture()
def encoder() -> GNNEncoder:
    return GNNEncoder(FEATURES, 8, 2, rng=np.random.default_rng(1))


@pytest.fixture()
def checkpoint(tmp_path, encoder):
    return save_checkpoint(tmp_path / "model.npz", encoder,
                           metadata={"name": "m-v1"})


@pytest.fixture()
def reference(corpus, encoder) -> np.ndarray:
    return EmbeddingService(encoder, cache_size=len(corpus)).embed(corpus)
