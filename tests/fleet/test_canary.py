"""CanaryController: deterministic slices, promotion, rollback, registry glue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    CanaryController,
    build_fleet,
    canary_fraction,
    deploy_canary_from_registry,
    fleet_from_registry,
)
from repro.gnn import GNNEncoder
from repro.serve import EmbeddingService, ModelRegistry, graph_digest
from repro.serve.checkpoint import load_checkpoint

FEATURES = 4  # matches the conftest corpus


def test_canary_fraction_is_deterministic_and_uniform():
    rng = np.random.default_rng(0)
    digests = [bytes(rng.integers(0, 256, size=32, dtype=np.uint8)).hex()
               for _ in range(500)]
    fractions = [canary_fraction(d) for d in digests]
    assert fractions == [canary_fraction(d) for d in digests]
    assert all(0.0 <= f < 1.0 for f in fractions)
    assert 0.3 < np.mean([f < 0.5 for f in fractions]) < 0.7


def test_healthy_canary_is_promoted(checkpoint, corpus, reference):
    bundle = load_checkpoint(checkpoint)
    with build_fleet(checkpoint, 2, version="v1") as router:
        router.deploy_canary(
            lambda: EmbeddingService(bundle.build_encoder()), "v2", 0.5)
        controller = CanaryController(router, min_graphs=8)
        assert controller.step() == "continue"  # warmup: no traffic yet
        for _ in range(3):
            router.embed(corpus)
        assert controller.evaluate()[0] == "healthy"
        assert controller.step() == "promote"
        assert router.canary_version is None
        result = router.embed_detailed(corpus)
        assert set(result.versions) == {"v2"}
        assert np.array_equal(result.embeddings, reference)
        # Nothing deployed: stepping again is a no-op.
        assert controller.step() == "continue"


class _BrokenEncoder:
    """Encoder stand-in whose forward pass always raises."""

    def eval(self):
        return self

    def graph_representations(self, graphs):
        raise RuntimeError("bad weights")


def test_failing_canary_is_rolled_back_and_contained(checkpoint, corpus,
                                                     reference):
    with build_fleet(checkpoint, 2, version="v1") as router:
        router.deploy_canary(
            lambda: EmbeddingService(GNNEncoder(
                FEATURES, 8, 2, rng=np.random.default_rng(99))), "v2", 0.5)
        # Sabotage every canary slot after deploy: requests on the canary
        # slice must fall back to stable, not fail.
        for worker in router.workers:
            worker.canary.service.encoder = _BrokenEncoder()
        result = router.embed_detailed(corpus)
        assert np.array_equal(result.embeddings, reference)
        assert set(result.versions) == {"v1"}  # every row fell back
        fallbacks = sum(w.telemetry.count("canary_fallbacks")
                        for w in router.workers)
        assert fallbacks > 0
        controller = CanaryController(router, min_graphs=8)
        verdict, evidence = controller.evaluate()
        assert verdict == "unhealthy"
        assert evidence["failure_rate"] > controller.max_failure_rate
        assert controller.step() == "rollback"
        assert router.canary_version is None
        after = router.embed_detailed(corpus)
        assert set(after.versions) == {"v1"}


def test_warmup_waits_for_traffic(checkpoint, corpus):
    bundle = load_checkpoint(checkpoint)
    with build_fleet(checkpoint, 2, version="v1") as router:
        router.deploy_canary(
            lambda: EmbeddingService(bundle.build_encoder()), "v2", 0.2)
        controller = CanaryController(router, min_graphs=10_000)
        router.embed(corpus)
        verdict, evidence = controller.evaluate()
        assert verdict == "warmup"
        assert evidence["canary_graphs"] < controller.min_graphs
        assert controller.step() == "continue"
        assert router.canary_version == "v2"


def test_controller_validates_thresholds(checkpoint):
    with build_fleet(checkpoint, 1) as router:
        with pytest.raises(ValueError):
            CanaryController(router, min_graphs=0)
        with pytest.raises(ValueError):
            CanaryController(router, max_failure_rate=-0.1)
        with pytest.raises(ValueError):
            CanaryController(router, max_latency_ratio=0.0)


def test_registry_glue_roundtrip(tmp_path, corpus):
    registry = ModelRegistry(tmp_path / "models")
    enc1 = GNNEncoder(FEATURES, 8, 2, rng=np.random.default_rng(1))
    enc2 = GNNEncoder(FEATURES, 8, 2, rng=np.random.default_rng(2))
    registry.register("sgcl-v1", enc1)
    registry.register("sgcl-v2", enc2)
    with fleet_from_registry(registry, "sgcl-v1", 2) as router:
        assert {w.version for w in router.workers} == {"sgcl-v1"}
        deploy_canary_from_registry(router, registry, "sgcl-v2", 0.5)
        assert router.canary_version == "sgcl-v2"
        result = router.embed_detailed(corpus)
        ref1 = EmbeddingService(enc1).embed(corpus)
        ref2 = EmbeddingService(enc2).embed(corpus)
        for i, graph in enumerate(corpus):
            if canary_fraction(graph_digest(graph)) < 0.5:
                assert result.versions[i] == "sgcl-v2"
                assert np.array_equal(result.embeddings[i], ref2[i])
            else:
                assert result.versions[i] == "sgcl-v1"
                assert np.array_equal(result.embeddings[i], ref1[i])
