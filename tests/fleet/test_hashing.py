"""HashRing: determinism, balance, and the minimal-remap property."""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fleet import HashRing

WORKERS = ["w0", "w1", "w2", "w3"]


def _digests(n: int) -> list[str]:
    return [hashlib.sha256(f"graph-{i}".encode()).hexdigest()
            for i in range(n)]


def test_assignment_is_deterministic_and_order_independent():
    digests = _digests(200)
    a = HashRing(WORKERS)
    b = HashRing(reversed(WORKERS))
    assert a.table(digests) == b.table(digests)
    assert a.table(digests) == a.table(digests)


def test_every_worker_owns_a_share():
    counts = {w: 0 for w in WORKERS}
    for digest, owner in HashRing(WORKERS).table(_digests(400)).items():
        counts[owner] += 1
    assert all(count > 0 for count in counts.values())
    # 64 vnodes per worker keeps the split roughly uniform; the bound is
    # deliberately loose — it guards against collapse, not variance.
    assert max(counts.values()) < 4 * min(counts.values())


def test_remove_remaps_only_the_removed_workers_keys():
    digests = _digests(300)
    ring = HashRing(WORKERS)
    before = ring.table(digests)
    ring.remove("w2")
    after = ring.table(digests)
    moved = [d for d in digests if before[d] != after[d]]
    assert moved, "removing a worker must remap its keys"
    assert all(before[d] == "w2" for d in moved), \
        "only keys owned by the removed worker may move"
    # ~1/N of the key space (N=4), with generous slack for hash variance.
    assert 0.10 < len(moved) / len(digests) < 0.45


def test_add_only_steals_keys_for_the_new_worker():
    digests = _digests(300)
    ring = HashRing(WORKERS)
    before = ring.table(digests)
    ring.add("w4")
    after = ring.table(digests)
    moved = [d for d in digests if before[d] != after[d]]
    assert moved
    assert all(after[d] == "w4" for d in moved), \
        "a new worker may only gain keys, never shuffle others"
    assert 0.05 < len(moved) / len(digests) < 0.40


def test_preference_order_is_distinct_and_starts_at_home():
    ring = HashRing(WORKERS)
    for digest in _digests(50):
        order = ring.preference(digest)
        assert order[0] == ring.assign(digest)
        assert sorted(order) == sorted(WORKERS)
        assert ring.preference(digest, n=2) == order[:2]


def test_assignments_survive_python_hash_seed_changes():
    """sha256 ring points, not ``hash()`` — stable across interpreter runs."""
    digests = _digests(32)
    script = (
        "from repro.fleet import HashRing\n"
        f"ring = HashRing({WORKERS!r})\n"
        f"print('|'.join(ring.assign(d) for d in {digests!r}))\n"
    )
    outputs = []
    src = Path(__file__).resolve().parents[2] / "src"
    for hash_seed in ("0", "4242"):
        env = {**os.environ, "PYTHONHASHSEED": hash_seed,
               "PYTHONPATH": str(src)}
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, check=True)
        outputs.append(proc.stdout.strip())
    assert outputs[0] == outputs[1]
    assert outputs[0] == "|".join(HashRing(WORKERS).assign(d)
                                  for d in digests)


def test_membership_and_errors():
    ring = HashRing(["w0"])
    assert "w0" in ring and len(ring) == 1
    with pytest.raises(ValueError):
        ring.add("w0")
    with pytest.raises(KeyError):
        ring.remove("nope")
    ring.remove("w0")
    with pytest.raises(LookupError):
        ring.assign("deadbeef")
    with pytest.raises(ValueError):
        HashRing([], vnodes=0)
