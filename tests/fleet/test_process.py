"""ProcessReplica: parity with in-process workers, real death, chaos kill."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetRouter, ProcessReplica, WorkerDownError
from repro.runtime import fork_available
from repro.validate.faults import KillWorkerOnce, chaos_enabled

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process replicas need the fork start method")


@pytest.fixture()
def fleet(checkpoint):
    replicas = [ProcessReplica(f"p{i}", checkpoint, version="m-v1",
                               response_timeout=30.0) for i in range(2)]
    router = FleetRouter(replicas)
    yield router
    router.close()


def test_process_fleet_matches_reference(fleet, corpus, reference):
    assert np.array_equal(fleet.embed(corpus), reference)
    stats = fleet.stats()
    assert all(w["backend"] == "process" for w in stats["per_worker"])
    assert all(w["alive"] for w in stats["per_worker"])
    assert stats["cache"]["misses"] == len(corpus)


def test_killed_replica_fails_over_and_reports_dead_stub(fleet, corpus,
                                                         reference):
    victim = fleet.worker("p0")
    victim.kill()
    assert not victim.alive
    with pytest.raises(WorkerDownError):
        victim.embed_items([])
    result = fleet.embed_detailed(corpus)
    assert np.array_equal(result.embeddings, reference)
    assert set(result.workers) == {"p1"}
    assert fleet.telemetry.count("failover") > 0
    stub = victim.stats()
    assert stub["alive"] is False and stub["backend"] == "process"
    assert stub["service"]["cache"]["lookups"] == 0


def test_close_is_graceful_and_idempotent(checkpoint, corpus):
    replica = ProcessReplica("p0", checkpoint, response_timeout=30.0)
    router = FleetRouter([replica])
    router.embed(corpus[:4])
    replica.close()
    replica.close()
    assert not replica.alive


@pytest.mark.skipif(not chaos_enabled(),
                    reason="chaos tests run with REPRO_CHAOS=1")
def test_chaos_kill_mid_load_fails_over_without_version_mixing(
        tmp_path, checkpoint, corpus, reference):
    """The acceptance scenario: a replica dies *during* the load.

    ``KillWorkerOnce`` hard-exits the child on its third request; every
    in-flight and subsequent item must complete on the survivor,
    bit-identical and single-versioned, and the death must be visible in
    the failover counter.
    """
    doomed = ProcessReplica("p0", checkpoint, version="m-v1",
                            response_timeout=30.0,
                            fault=KillWorkerOnce(tmp_path / "killed", item=2))
    steady = ProcessReplica("p1", checkpoint, version="m-v1",
                            response_timeout=30.0)
    with FleetRouter([doomed, steady]) as router:
        versions = set()
        workers_seen = set()
        for start in range(0, len(corpus), 3):
            batch = corpus[start:start + 3]
            result = router.embed_detailed(batch)
            assert np.array_equal(result.embeddings,
                                  reference[start:start + 3])
            versions |= result.served_versions()
            workers_seen |= set(result.workers)
        fault = KillWorkerOnce(tmp_path / "killed", item=2)
        assert fault.fired(), "the chaos kill never triggered"
        assert not doomed.alive
        assert versions == {"m-v1"}, "failover must not mix versions"
        assert "p1" in workers_seen
        assert router.telemetry.count("failover") > 0
        assert router.stats()["alive"] == 1
