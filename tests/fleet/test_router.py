"""FleetRouter: sharding, bit-identity, failover, policy comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FleetExhaustedError,
    FleetRouter,
    FleetWorker,
    build_fleet,
    canary_fraction,
)
from repro.serve import EmbeddingService, graph_digest
from repro.serve.checkpoint import load_checkpoint


def test_fleet_matches_single_service_bit_for_bit(checkpoint, corpus,
                                                  reference):
    for num_workers in (1, 3):
        with build_fleet(checkpoint, num_workers) as router:
            out = router.embed(corpus)
            assert out.dtype == reference.dtype
            assert np.array_equal(out, reference)


def test_each_digest_is_cached_on_exactly_one_shard(checkpoint, corpus):
    with build_fleet(checkpoint, 3) as router:
        router.embed(corpus)
        router.embed(corpus)
        stats = router.stats()
        digests = {graph_digest(g) for g in corpus}
        # Fleet-wide cache size == distinct digests: zero duplication.
        assert stats["cache"]["size"] == len(digests)
        # Second pass is all hits.
        assert stats["cache"]["hits"] == len(corpus)
        for graph in corpus:
            home = router.home(graph)
            assert home == router.home(graph_digest(graph))
            assert home in {w.worker_id for w in router.workers}


def test_hash_routing_beats_random_on_repeated_traffic(checkpoint, corpus):
    """The tentpole property, in miniature: home shards keep caches hot."""
    rng = np.random.default_rng(3)
    stream = [corpus[i] for i in rng.integers(0, len(corpus), size=120)]
    rates = {}
    for policy in ("hash", "random"):
        with build_fleet(checkpoint, 3, cache_size=max(2, len(corpus) // 3),
                         policy=policy) as router:
            for i in range(0, len(stream), 6):
                router.embed(stream[i:i + 6])
            rates[policy] = router.stats()["cache"]["hit_rate"]
    assert rates["hash"] > rates["random"]


def test_failover_serves_from_surviving_shards(checkpoint, corpus, reference):
    with build_fleet(checkpoint, 3) as router:
        victim = router.home(corpus[0])
        router.worker(victim).kill()
        result = router.embed_detailed(corpus)
        assert np.array_equal(result.embeddings, reference)
        assert victim not in set(result.workers)
        assert router.telemetry.count("failover") > 0
        assert router.stats()["alive"] == 2


def test_service_latency_merges_true_fleet_wide_percentiles(checkpoint,
                                                            corpus):
    # stats()["service_latency"] must be percentiles over the *union* of
    # every replica's raw embed_seconds samples — not an average of
    # per-worker summaries, which goes wrong whenever load is skewed
    # (and hash routing skews it by design).
    with build_fleet(checkpoint, 3) as router:
        for i in range(0, len(corpus), 4):
            router.embed(corpus[i:i + 4])
        stats = router.stats()
        union = [sample for worker in stats["per_worker"]
                 for sample in worker["service_telemetry"]["samples"]
                 .get("embed_seconds", [])]
        assert union, "replicas should ship raw samples in their stats"
        latency = stats["service_latency"]
        assert latency["requests"] == len(union)
        for key, q in (("p50_ms", 50), ("p95_ms", 95), ("p99_ms", 99)):
            assert latency[key] == pytest.approx(
                float(np.percentile(union, q)) * 1e3)
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]


def test_revived_worker_takes_its_traffic_back(checkpoint, corpus):
    with build_fleet(checkpoint, 2) as router:
        victim = router.home(corpus[0])
        router.worker(victim).kill()
        result = router.embed_detailed([corpus[0]])
        assert result.workers[0] != victim
        router.worker(victim).revive()
        result = router.embed_detailed([corpus[0]])
        assert result.workers[0] == victim


class _BoomService:
    """Stable-slot stand-in that always raises (breaker fodder)."""

    def embed(self, graphs):
        raise RuntimeError("boom")

    def stats(self):
        return {"cache": {"size": 0, "capacity": 1, "occupancy": 0.0,
                          "hits": 0, "misses": 0, "lookups": 0,
                          "hit_rate": float("nan"), "evictions": 0},
                "encoder": {"batches": 0, "graphs": 0,
                            "mean_batch_size": float("nan")},
                "latency": {"requests": 0, "mean_ms": float("nan"),
                            "p50_ms": float("nan"), "p95_ms": float("nan")},
                "resilience": {"shed": 0, "timeouts": 0,
                               "encoder_failures": 0}}


def test_raising_worker_trips_breaker_and_fails_over(checkpoint, corpus,
                                                     reference):
    bundle = load_checkpoint(checkpoint)
    good = FleetWorker("good", EmbeddingService(bundle.build_encoder()))
    bad = FleetWorker("bad", _BoomService())
    router = FleetRouter([good, bad])
    for i in range(0, len(corpus), 4):
        out = router.embed(corpus[i:i + 4])
        assert np.array_equal(out, reference[i:i + 4])
    stats = router.stats()
    assert stats["worker_errors"] > 0
    assert stats["failover"] >= stats["worker_errors"]
    # After failure_threshold errors the breaker opens: refusals stop
    # costing an exception and are counted as reroutes only.
    assert bad.breaker.state == "open"


def test_all_replicas_down_raises_exhausted(checkpoint, corpus):
    with build_fleet(checkpoint, 2) as router:
        for worker in router.workers:
            worker.kill()
        with pytest.raises(FleetExhaustedError):
            router.embed(corpus[:2])
        assert router.telemetry.count("exhausted") > 0


def test_canary_slice_is_digest_deterministic_even_across_failover(
        checkpoint, corpus, reference):
    bundle = load_checkpoint(checkpoint)
    with build_fleet(checkpoint, 2, version="v1") as router:
        router.deploy_canary(
            lambda: EmbeddingService(bundle.build_encoder()), "v2", 0.5)
        first = router.embed_detailed(corpus)
        router.worker(router.home(corpus[0])).kill()
        second = router.embed_detailed(corpus)
        # Same checkpoint for both versions: rows stay bit-identical...
        assert np.array_equal(first.embeddings, reference)
        assert np.array_equal(second.embeddings, reference)
        # ...and the serving version depends only on the digest, never on
        # which replica happened to serve the row.
        for graph, v1, v2 in zip(corpus, first.versions, second.versions):
            expected = "v2" if canary_fraction(graph_digest(graph)) < 0.5 \
                else "v1"
            assert v1 == v2 == expected


def test_router_validates_inputs(checkpoint, corpus):
    with pytest.raises(ValueError):
        FleetRouter([])
    with build_fleet(checkpoint, 1) as router:
        with pytest.raises(ValueError):
            router.embed([])
        single = router.embed(corpus[0])
        assert single.shape[0] == 1
    with pytest.raises(ValueError):
        build_fleet(checkpoint, 2, policy="round-robin")
    with pytest.raises(ValueError):
        build_fleet(checkpoint, 0)
    bundle = load_checkpoint(checkpoint)
    twins = [FleetWorker("w", EmbeddingService(bundle.build_encoder()))
             for _ in range(2)]
    with pytest.raises(ValueError):
        FleetRouter(twins)


def test_stats_shape(checkpoint, corpus):
    with build_fleet(checkpoint, 2) as router:
        router.embed(corpus)
        stats = router.stats()
    assert stats["workers"] == 2 and stats["alive"] == 2
    assert stats["graphs"] == len(corpus)
    cache = stats["cache"]
    assert 0 <= cache["occupancy"] <= 1
    assert cache["hits"] + cache["misses"] == len(corpus)
    assert len(stats["per_worker"]) == 2
    for worker_stats in stats["per_worker"]:
        assert worker_stats["backend"] == "inprocess"
        assert worker_stats["alive"] is True
        assert "occupancy" in worker_stats["service"]["cache"]


def test_invalidate_evicts_only_named_digests_fleet_wide(checkpoint, corpus):
    """Selective refresh: changed digests drop, warm rows keep serving."""
    fleet = build_fleet(str(checkpoint), 3, cache_size=len(corpus))
    fleet.embed(corpus)
    assert fleet.stats()["cache"]["hits"] == 0

    victims = [graph_digest(g) for g in corpus[:5]]
    removed = fleet.invalidate(victims)
    assert removed == 5  # each digest was cached on exactly one shard
    assert fleet.invalidate(victims) == 0  # idempotent
    assert fleet.telemetry.count("invalidated") == 5

    fleet.embed(corpus)
    # the unchanged rows served warm; only the victims recomputed
    assert fleet.stats()["cache"]["hits"] == len(corpus) - 5
    fleet.close()


def test_service_invalidate_counts_rows(checkpoint, corpus):
    service = EmbeddingService(load_checkpoint(str(checkpoint)).build_encoder(),
                               cache_size=len(corpus))
    service.embed(corpus)
    digests = [graph_digest(g) for g in corpus[:3]]
    assert service.invalidate(digests + ["not-a-digest"]) == 3
    assert service.invalidate(digests) == 0
    assert service.telemetry.count("cache_invalidations") == 3
