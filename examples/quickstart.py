"""Quickstart: pre-train SGCL on a TU dataset and evaluate the embeddings.

Run with::

    python examples/quickstart.py

This is the paper's unsupervised protocol in miniature: contrastive
pre-training on unlabeled graphs, then an SVM/logistic-regression
cross-validation over the frozen graph embeddings.
"""

from __future__ import annotations

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.eval import cross_validated_accuracy, embed_dataset


def main() -> None:
    # 1. Load a dataset. The registry serves seeded synthetic TU-like
    #    datasets (offline stand-ins for the real TU collection).
    dataset = load_dataset("MUTAG", seed=0, scale=0.5)
    print(f"dataset: {dataset}")
    print(f"statistics: {dataset.statistics()}")

    # 2. Configure SGCL. Defaults follow the paper (ρ=0.9, τ=0.2,
    #    λ_c=λ_W=0.01, 3-layer GIN encoder, Adam lr=1e-3).
    config = SGCLConfig(epochs=8, batch_size=32, seed=0)
    trainer = SGCLTrainer(dataset.num_features, config)

    # 3. Pre-train on the graphs as unlabeled data.
    history = trainer.pretrain(dataset.graphs)
    print(f"final epoch stats: { {k: round(v, 4) for k, v in history[-1].items()} }")

    # 4. Evaluate: embed every graph with the frozen encoder, then k-fold
    #    cross-validated classification. classifier="svm" uses the paper's
    #    RBF C-SVC; "logreg" is a faster option with similar results.
    embeddings = embed_dataset(trainer.encoder, dataset)
    mean, std = cross_validated_accuracy(embeddings, dataset.labels(),
                                         k=10, classifier="logreg")
    print(f"10-fold CV accuracy: {100 * mean:.2f} ± {100 * std:.2f} %")


if __name__ == "__main__":
    main()
