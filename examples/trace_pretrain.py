"""Traced SGCL pre-training: event log, console progress, span tree, report.

Runs a small pre-training under an active Observer with three sinks
(JSONL file, in-memory ring buffer, console progress lines), writes a run
manifest next to the log, then renders the log with the same aggregation
the ``repro report`` CLI uses.

Run from the repository root::

    PYTHONPATH=src python examples/trace_pretrain.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.obs import (
    ConsoleSink,
    JSONLSink,
    MemorySink,
    Observer,
    RunManifest,
    dataset_fingerprint,
    render_run_report,
    render_span_tree,
)


def main() -> None:
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    config = SGCLConfig(epochs=4, batch_size=32, seed=0)

    log_dir = Path("runs")
    memory = MemorySink()
    observer = Observer(sinks=[memory, ConsoleSink()])
    log_path = log_dir / f"run-{observer.run_id}.jsonl"
    observer.sinks.append(JSONLSink(log_path))

    # Pin what produced this run: config, corpus fingerprint, git SHA, env.
    RunManifest(
        observer.run_id, config=config, seed=config.seed,
        dataset={"name": "MUTAG", "num_graphs": len(dataset),
                 "fingerprint": dataset_fingerprint(dataset.graphs)},
        extra={"example": "trace_pretrain"},
    ).write(log_path.with_suffix(".manifest.json"))

    trainer = SGCLTrainer(dataset.num_features, config)
    with observer.activate():
        observer.event("run_start", method="SGCL", dataset="MUTAG",
                       epochs=config.epochs)
        trainer.pretrain(dataset.graphs)
        observer.event("run_end",
                       wall_seconds=round(sum(e["epoch_seconds"] for e
                                              in memory.of_kind("epoch")), 3))
    observer.emit_trace()
    observer.close()

    print("\nWhere the time went:")
    print(render_span_tree(observer.tracer))

    print(f"\nAggregated from {log_path}:")
    print(render_run_report(log_path))
    print(f"\nre-render any time with: python -m repro report {log_path}")


if __name__ == "__main__":
    main()
