"""Guard rails end to end: validation policies, NaN injection, doctor.

Walks through the three pieces of ``repro.validate``:

1. a :class:`DatasetValidator` catching a deliberately corrupted graph
   under each policy (``raise`` / ``drop`` / ``warn``);
2. a :class:`NumericsGuard` absorbing an injected NaN loss during SGCL
   pre-training — the batch is skipped and counted, the run survives;
3. the ``repro doctor`` engine producing the same report as
   ``python -m repro doctor``.

Run from the repository root::

    PYTHONPATH=src python examples/numerics_guard_rails.py
"""

from __future__ import annotations

import warnings

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import GraphDataset, load_dataset
from repro.obs import Observer
from repro.validate import DatasetValidator, ValidationError, render_doctor_report, run_doctor
from repro.validate.faults import corrupt_features, inject_nan_loss


def validation_policies() -> None:
    print("== 1. data validation policies ==")
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    corrupted = GraphDataset(
        "MUTAG-corrupted",
        [corrupt_features(dataset.graphs[0])] + dataset.graphs[1:],
        dataset.num_classes)

    try:
        DatasetValidator(policy="raise").apply(corrupted)
    except ValidationError as exc:
        print(f"raise: {exc}")

    observer = Observer()
    cleaned = DatasetValidator(policy="drop", observer=observer) \
        .apply(corrupted)
    print(f"drop:  {len(corrupted)} graphs -> {len(cleaned)} "
          f"(metrics: validate/dropped_graphs="
          f"{observer.metrics.count('validate/dropped_graphs'):.0f})")

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        DatasetValidator(policy="warn").apply(corrupted)
    print(f"warn:  {caught[0].message}")


def numerics_guard() -> None:
    print("\n== 2. NumericsGuard absorbing an injected NaN loss ==")
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    config = SGCLConfig(epochs=1, batch_size=8, seed=0,
                        numerics_policy="skip", grad_clip=5.0)
    trainer = SGCLTrainer(dataset.num_features, config)
    observer = Observer()
    with inject_nan_loss(trainer.model, batches={0}):
        history = trainer.pretrain(dataset.graphs, observer=observer)
    row = history[-1]
    print(f"epoch 1: {row['num_batches']} batch(es) trained, "
          f"{row['skipped_batches']} skipped, loss {row['loss']:.4f}")
    print(f"metrics: numerics/skipped_batches="
          f"{observer.metrics.count('numerics/skipped_batches'):.0f}")


def doctor() -> None:
    print("\n== 3. repro doctor ==")
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1)
    print(render_doctor_report(report))


def main() -> None:
    validation_policies()
    numerics_guard()
    doctor()


if __name__ == "__main__":
    main()
