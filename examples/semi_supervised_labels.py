"""Semi-supervised learning: how far do 1 % / 10 % of labels go?

Run with::

    python examples/semi_supervised_labels.py

Paper Table VI protocol in miniature: pre-train on the unlabeled training
split, then fine-tune encoder + classification head using only a stratified
1 % or 10 % labelled subset, and evaluate on a held-out test split. The
value of contrastive pre-training is largest when labels are scarcest.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_method
from repro.data import label_rate_split, load_dataset, train_test_split
from repro.eval import finetune_classifier


def evaluate(method: str, dataset, label_rate: float, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    train_idx, test_idx = train_test_split(len(dataset), 0.2, rng)
    model = make_method(method, dataset.num_features, seed=seed)
    model.pretrain([dataset[i] for i in train_idx], epochs=4)
    labels = dataset.labels()
    labelled_local = label_rate_split(labels[train_idx], label_rate, rng)
    labelled_idx = train_idx[labelled_local]
    accuracy = finetune_classifier(model.encoder, dataset, labelled_idx,
                                   test_idx, epochs=10, rng=rng)
    return 100.0 * accuracy


def main() -> None:
    dataset = load_dataset("NCI1", seed=0, scale=0.06)
    print(f"dataset: {dataset} — {len(dataset)} graphs")
    print(f"\n{'method':<14}{'1% labels':>12}{'10% labels':>12}")
    for method in ("No Pre-Train", "GraphCL", "SGCL"):
        one = evaluate(method, dataset, 0.01)
        ten = evaluate(method, dataset, 0.10)
        print(f"{method:<14}{one:>11.2f}%{ten:>11.2f}%")
    print("\nExpected shape (paper Table VI): pre-trained methods beat "
          "No-Pre-Train,\nwith the largest gaps in the 1 % setting.")


if __name__ == "__main__":
    main()
