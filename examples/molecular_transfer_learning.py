"""Transfer learning: pre-train on a molecule corpus, fine-tune downstream.

Run with::

    python examples/molecular_transfer_learning.py

Reproduces the paper's Table IV protocol in miniature: SGCL pre-trains on an
unlabeled ZincLike corpus, the encoder is fine-tuned on scaffold-split
multi-task biochemistry datasets, and ROC-AUC is compared against a
non-pre-trained baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_method
from repro.data import load_dataset, scaffold_split
from repro.eval import finetune_multitask


def evaluate(method_name: str, corpus, downstream_names) -> dict[str, float]:
    model = make_method(method_name, corpus.num_features, seed=0)
    model.pretrain(corpus.graphs, epochs=4)
    scores = {}
    for name in downstream_names:
        downstream = load_dataset(name, seed=0, scale=0.15)
        splits = scaffold_split(downstream)
        auc = finetune_multitask(model.encoder, downstream, splits,
                                 epochs=8, rng=np.random.default_rng(1))
        scores[name] = 100.0 * auc
    return scores


def main() -> None:
    corpus = load_dataset("ZINC", seed=0, scale=0.2)
    print(f"pre-training corpus: {corpus}")
    downstream_names = ["BBBP", "BACE", "TOX21"]

    results = {name: evaluate(name, corpus, downstream_names)
               for name in ("No Pre-Train", "SGCL")}

    print(f"\n{'dataset':<10}{'No Pre-Train':>14}{'SGCL':>10}")
    for dataset in downstream_names:
        print(f"{dataset:<10}{results['No Pre-Train'][dataset]:>13.2f}%"
              f"{results['SGCL'][dataset]:>9.2f}%")
    gains = [results["SGCL"][d] - results["No Pre-Train"][d]
             for d in downstream_names]
    print(f"\nmean ROC-AUC gain from SGCL pre-training: "
          f"{np.mean(gains):+.2f} points")


if __name__ == "__main__":
    main()
