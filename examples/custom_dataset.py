"""Use SGCL on your own graphs.

Run with::

    python examples/custom_dataset.py

Shows the minimal integration surface: build ``repro.graph.Graph`` objects
(node features + COO edge index + label), wrap them in a ``GraphDataset``,
and the whole pipeline — pre-training, embedding, evaluation — works
unchanged. Here the custom data is a toy "communication networks" corpus:
class 0 graphs contain a ring sub-network, class 1 graphs a hub-and-spoke.
"""

from __future__ import annotations

import numpy as np

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import GraphDataset
from repro.eval import cross_validated_accuracy, embed_dataset
from repro.graph import Graph


def make_network(rng: np.random.Generator, label: int) -> Graph:
    """A random communication network with a class-specific core."""
    n_peripheral = int(rng.integers(8, 16))
    edges = [(int(rng.integers(max(i, 1))), i)
             for i in range(1, n_peripheral)]  # random tree backbone
    core = 6
    base = n_peripheral
    if label == 0:  # ring core
        edges += [(base + i, base + (i + 1) % core) for i in range(core)]
    else:           # star core
        edges += [(base, base + i) for i in range(1, core)]
    edges.append((int(rng.integers(n_peripheral)), base))  # attach core
    n = n_peripheral + core
    # Features: one-hot "device type" + a bandwidth attribute that is high
    # inside the core (the semantic structure).
    device = rng.integers(4, size=n)
    x = np.zeros((n, 5))
    x[np.arange(n), device] = 1.0
    x[:, 4] = rng.normal(0.1, 0.05, size=n)
    x[base:, 4] = rng.normal(1.0, 0.1, size=core)
    arr = np.array(edges)
    edge_index = np.concatenate([arr, arr[:, ::-1]], axis=0).T
    meta = {"semantic_nodes": np.arange(n) >= base}
    return Graph(x, edge_index, y=label, meta=meta)


def main() -> None:
    rng = np.random.default_rng(0)
    graphs = [make_network(rng, label) for label in rng.integers(2, size=120)]
    dataset = GraphDataset("CommNets", graphs, num_classes=2)
    print(f"custom dataset: {dataset}")
    print(f"statistics: {dataset.statistics()}")

    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=6, batch_size=32, seed=0))
    trainer.pretrain(dataset.graphs)

    embeddings = embed_dataset(trainer.encoder, dataset)
    mean, std = cross_validated_accuracy(embeddings, dataset.labels(),
                                         k=5, classifier="logreg")
    print(f"5-fold CV accuracy on custom data: "
          f"{100 * mean:.2f} ± {100 * std:.2f} %")


if __name__ == "__main__":
    main()
