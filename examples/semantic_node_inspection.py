"""Inspect which nodes the Lipschitz constant generator calls semantic.

Run with::

    python examples/semantic_node_inspection.py

SGCL's central mechanism is the per-node Lipschitz constant
``K_r = D_R(G, Ĝ_r) / D_T(G, Ĝ_r)`` (Eq. 11): nodes whose removal moves the
representation a lot per unit of topology change are semantic-related and
protected during augmentation. The synthetic datasets record the planted
ground truth, so we can score the generator directly.
"""

from __future__ import annotations

import numpy as np

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.eval import roc_auc
from repro.graph import Batch
from repro.tensor import no_grad


def main() -> None:
    dataset = load_dataset("PROTEINS", seed=0, scale=0.1)
    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=5, batch_size=32, seed=0))
    trainer.pretrain(dataset.graphs)
    generator = trainer.model.generator

    # Score every node of one graph.
    graph = dataset[0]
    with no_grad():
        constants = generator.node_constants(Batch([graph])).data
    truth = graph.meta["semantic_nodes"]
    order = np.argsort(-constants)
    print(f"graph: {graph}")
    print(f"{'node':>5} {'K_r':>8} {'degree':>7} {'planted semantic?':>18}")
    for node in order[:12]:
        print(f"{node:>5} {constants[node]:>8.3f} "
              f"{int(graph.degrees()[node]):>7} "
              f"{'yes' if truth[node] else '':>18}")

    # Aggregate identification quality over the dataset.
    aucs = []
    with no_grad():
        for g in dataset.graphs[:40]:
            k = generator.node_constants(Batch([g])).data
            mask = g.meta["semantic_nodes"].astype(int)
            if 0 < mask.sum() < len(mask):
                aucs.append(roc_auc(mask, k))
    print(f"\nsemantic-node identification ROC-AUC over "
          f"{len(aucs)} graphs: {np.mean(aucs):.3f}")
    print("(1.0 = the Lipschitz constants perfectly rank planted semantic "
          "nodes above background nodes)")


if __name__ == "__main__":
    main()
