"""Node-level SGCL on one large graph: sample → pretrain → probe → serve.

Run with::

    python examples/node_level_pretrain.py

The graph-level pipeline contrasts whole graphs; this example is the
large-graph regime (docs/SAMPLING.md): a planted-community graph too big
to encode whole is streamed as seeded sampled subgraphs, pre-trained with
the node-level SGCL objective, probed with a logistic regression on
frozen per-node embeddings, and served per-node through the existing
digest-cached embedding service.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import SGCLConfig
from repro.eval import node_linear_probe
from repro.sampling import (
    NodeEmbeddingIndex,
    NodeSGCLTrainer,
    SubgraphStream,
    load_node_dataset,
    make_sampler,
)
from repro.serve import EmbeddingService


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-node-"))

    # 1. One large node-labelled graph (1M nodes at scale=1.0; a small
    #    slice here so the example runs in seconds on one core).
    dataset = load_node_dataset("community-1m", seed=0, scale=0.005)
    print(f"dataset: {dataset.name} — {dataset.statistics()}")

    # 2. A seeded sampler + stream. Every subgraph is a pure function of
    #    (dataset, config, seed), so the stream is bit-identical across
    #    reruns, worker counts and resumes.
    sampler = make_sampler("walk", dataset, roots=24, walk_length=6)
    stream = SubgraphStream(sampler, samples_per_epoch=24, batch_size=4,
                            seed=0, norm_samples=50)
    sizes = [g.num_nodes for g in stream.subgraphs(epoch=0)]
    print(f"epoch 0: {len(sizes)} subgraphs, "
          f"{np.mean(sizes):.0f} nodes on average")

    # 3. Node-level pre-training: per-subgraph Lipschitz augmentation,
    #    L2L InfoNCE over augmentation survivors, GraphSAINT loss
    #    weights. Checkpoints are standard bundles (latest/best).
    config = SGCLConfig(hidden_dim=16, num_layers=2, seed=0)
    trainer = NodeSGCLTrainer(dataset.num_features, config)
    history = trainer.pretrain(stream, epochs=3,
                               checkpoint_dir=root / "checkpoints")
    for row in history:
        print(f"epoch {row['epoch']}: loss={row['loss']:.4f} "
              f"k_v_mean={row['k_v_mean']:.3f} "
              f"drop={row['drop_fraction']:.2f}")

    # 4. Evaluate: a logistic probe on frozen per-node embeddings (the
    #    pooled readout of each node's deterministic ego-net).
    probe = node_linear_probe(trainer.encoder, dataset, num_nodes=300,
                              seed=0)
    chance = 1.0 / dataset.num_classes
    print(f"probe accuracy: {probe['accuracy']:.1%} "
          f"(chance {chance:.1%}, {probe['num_test']} test nodes)")

    # 5. Serve per-node embeddings through the graph-level service:
    #    ego-nets are seeded by (seed, node_id), so their digests are
    #    stable and repeat queries are cache hits.
    service = EmbeddingService.from_checkpoint(
        root / "checkpoints" / "latest.npz")
    index = NodeEmbeddingIndex(service, dataset, seed=0)
    first = index.embed_nodes([0, 5, 9])
    second = index.embed_nodes([0, 5, 9])  # all cache hits
    assert np.array_equal(first, second)
    stats = service.stats()["cache"]
    print(f"serving cache: hits={stats['hits']} misses={stats['misses']}")


if __name__ == "__main__":
    main()
