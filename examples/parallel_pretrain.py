"""Parallel runtime demo: prefetching, seed fan-out, precompute cache.

Walks through the three pieces of ``repro.runtime`` on a small SGCL
workload and demonstrates the determinism contract — every worker count
produces bit-identical numbers, parallelism only moves wall-time:

1. pre-training with background batch prefetching (``PrefetchLoader`` via
   ``SGCLConfig.prefetch_batches``) checked against the plain loader;
2. multi-seed unsupervised evaluation fanned out over 2 worker processes
   (``run_unsupervised(workers=2)``) checked against the serial run;
3. Lipschitz-constant precompute under the frozen generator served twice
   from a content-addressed ``PrecomputeCache`` — the second pass never
   touches the encoder.

Run from the repository root::

    PYTHONPATH=src python examples/parallel_pretrain.py

Worker counts can also come from the environment (``REPRO_WORKERS=2``) or
the CLI (``python -m repro pretrain --workers 2``).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench import run_unsupervised
from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.runtime import PrecomputeCache, resolve_workers


def main() -> None:
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    workers = max(2, resolve_workers())

    # 1. Prefetching: same seed, with and without a background loader.
    plain = SGCLTrainer(dataset.num_features,
                        SGCLConfig(epochs=2, batch_size=32, seed=0))
    prefetched = SGCLTrainer(
        dataset.num_features,
        SGCLConfig(epochs=2, batch_size=32, seed=0, prefetch_batches=2))
    history_a = plain.pretrain(dataset.graphs)
    history_b = prefetched.pretrain(dataset.graphs)
    drift = max(abs(a["loss"] - b["loss"])
                for a, b in zip(history_a, history_b))
    print(f"prefetch loss drift across {len(history_a)} epochs: {drift}"
          f"  (must be exactly 0.0)")

    # 2. Seed fan-out: serial vs parallel evaluation of the same cells.
    settings = dict(seeds=[0, 1], scale=0.1, epochs=1, folds=3)
    start = time.perf_counter()
    serial = run_unsupervised("SGCL", "MUTAG", workers=1, **settings)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_unsupervised("SGCL", "MUTAG", workers=workers, **settings)
    parallel_s = time.perf_counter() - start
    print(f"unsupervised MUTAG, 2 seeds: serial {serial_s:.1f}s, "
          f"{workers} workers {parallel_s:.1f}s")
    print(f"  serial   mean±std: {serial[0]:.2f} ± {serial[1]:.2f} %")
    print(f"  parallel mean±std: {parallel[0]:.2f} ± {parallel[1]:.2f} %")
    assert serial == parallel, "worker count must never change results"

    # 3. Content-addressed precompute cache for frozen-generator K_V.
    cache = PrecomputeCache(Path("runs") / "precompute-cache")
    for attempt in ("cold", "warm"):
        start = time.perf_counter()
        constants = prefetched.precompute_lipschitz(
            dataset.graphs, workers=workers, cache=cache)
        seconds = time.perf_counter() - start
        print(f"K_V precompute ({attempt}): {len(constants)} graphs "
              f"in {seconds:.2f}s — cache stats {cache.stats()}")


if __name__ == "__main__":
    main()
