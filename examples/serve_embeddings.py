"""Persistence & serving: pretrain → checkpoint → serve → stats.

Run with::

    python examples/serve_embeddings.py

The deployment shape the paper targets: contrastive pre-training produces a
frozen encoder which is then consumed as an embedding API. This example
pre-trains SGCL, checkpoints it (with periodic + best-loss snapshots),
registers it next to a baseline in a model registry, and serves cached,
micro-batched embeddings while watching the telemetry.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.baselines import make_method
from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.eval import cross_validated_accuracy, embed_dataset
from repro.serve import EmbeddingService, ModelRegistry, load_trainer


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    dataset = load_dataset("MUTAG", seed=0, scale=0.3)
    print(f"dataset: {dataset}")

    # 1. Pre-train SGCL; checkpoint_dir writes best.npz (lowest mean loss)
    #    and — with save_every — periodic epoch-NNNN.npz snapshots.
    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=4, batch_size=32, seed=0))
    trainer.pretrain(dataset.graphs, checkpoint_dir=root / "checkpoints",
                     save_every=2)
    print("checkpoints:",
          sorted(p.name for p in (root / "checkpoints").iterdir()))

    # 2. A checkpoint restores the *whole* trainer — parameters, Adam
    #    moments and RNG streams — so resumed training is bit-identical.
    resumed = load_trainer(root / "checkpoints" / "best.npz")
    print(f"resumed trainer after {len(resumed.history)} epoch(s)")

    # 3. Register models by name; one registry can serve several methods.
    registry = ModelRegistry(root / "models")
    registry.register("sgcl-mutag", trainer.model, config=trainer.config,
                      metadata={"dataset": "MUTAG"})
    baseline = make_method("GraphCL", dataset.num_features, seed=0)
    baseline.pretrain(dataset.graphs, epochs=2)
    registry.register("graphcl-mutag", baseline,
                      metadata={"dataset": "MUTAG"})
    for entry in registry.list():
        print(f"registered: {entry['name']} ({entry['model_class']})")

    # 4. Serve embeddings. The first pass runs the encoder; the second is
    #    answered entirely from the content-addressed cache.
    service: EmbeddingService = registry.get("sgcl-mutag")
    embeddings = service.embed(dataset.graphs)
    service.embed(dataset.graphs)  # all cache hits, zero forward passes

    # Single-graph traffic coalesces through the micro-batching queue.
    pending = [service.submit(g) for g in dataset.graphs[:8]]
    service.flush()
    pending[0].result()

    stats = service.stats()
    print(f"cache: hit_rate={stats['cache']['hit_rate']:.2f} "
          f"size={stats['cache']['size']}")
    print(f"encoder: {stats['encoder']['batches']} batches / "
          f"{stats['encoder']['graphs']} graphs")
    print(f"latency: p50={stats['latency']['p50_ms']:.2f} ms "
          f"p95={stats['latency']['p95_ms']:.2f} ms")

    # 5. The eval protocol reuses the cache via the opt-in service path.
    cached = embed_dataset(trainer.encoder, dataset, service=service)
    mean, std = cross_validated_accuracy(cached, dataset.labels(),
                                         k=5, classifier="logreg")
    print(f"5-fold CV accuracy over served embeddings: "
          f"{100 * mean:.2f} ± {100 * std:.2f} %")
    assert (embeddings == cached).all()


if __name__ == "__main__":
    main()
