"""Sharded serving fleet: routing, failover, canary promote/rollback.

Run with::

    python examples/fleet_serving.py

Scales the serving layer of ``examples/serve_embeddings.py`` out to N
replicas behind a :class:`repro.fleet.FleetRouter`: graphs are routed to
their home shard by consistent hashing (each one cached exactly once
fleet-wide), a killed replica fails over to the ring successor without
changing a single bit of output, and a second model version is rolled
out as a canary and promoted on its telemetry. See docs/SERVING.md.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset
from repro.fleet import (
    CanaryController,
    deploy_canary_from_registry,
    fleet_from_registry,
)
from repro.serve import EmbeddingService, ModelRegistry, graph_digest


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    dataset = load_dataset("MUTAG", seed=0, scale=0.3)
    print(f"dataset: {dataset}")

    # 1. Two pre-trained model versions in a registry — v2 is the one we
    #    will canary onto the running fleet.
    registry = ModelRegistry(root / "models")
    for version, seed in (("sgcl-v1", 0), ("sgcl-v2", 1)):
        trainer = SGCLTrainer(dataset.num_features,
                              SGCLConfig(epochs=2, batch_size=32, seed=seed))
        trainer.pretrain(dataset.graphs)
        registry.register(version, trainer.model, config=trainer.config)
    print("registered:", [e["name"] for e in registry.list()])

    # 2. Serve v1 from a 3-shard fleet. The checkpoint is read once; every
    #    replica rebuilds the same encoder (bit-identical weights).
    router = fleet_from_registry(registry, "sgcl-v1", num_workers=3)
    single = registry.get("sgcl-v1", cache_size=len(dataset.graphs))
    reference = single.embed(dataset.graphs)
    assert np.array_equal(router.embed(dataset.graphs), reference)

    # Each digest lives on exactly one shard: fleet-wide cache size is the
    # number of distinct graphs, not graphs × replicas.
    router.embed(dataset.graphs)  # second pass: all hits
    stats = router.stats()
    print(f"fleet cache: size={stats['cache']['size']} across "
          f"{stats['workers']} shard(s), hit_rate="
          f"{stats['cache']['hit_rate']:.2f}")

    # 3. Kill a shard mid-service: its keys reroute to ring successors,
    #    results stay bit-identical, and the reroute is counted.
    victim = router.home(dataset.graphs[0])
    router.worker(victim).kill()
    result = router.embed_detailed(dataset.graphs)
    assert np.array_equal(result.embeddings, reference)
    assert victim not in set(result.workers)
    print(f"killed {victim}: {int(router.telemetry.count('failover'))} "
          f"item(s) failed over, output unchanged")
    router.worker(victim).revive()

    # 4. Canary v2 on 40% of the digest space. The slice is deterministic
    #    in the digest, so the same graphs ride the canary on every
    #    replica — failover can never mix versions for one graph.
    deploy_canary_from_registry(router, registry, "sgcl-v2",
                                slice_fraction=0.4)
    controller = CanaryController(router, min_graphs=16)
    decision = "continue"
    while decision == "continue":
        result = router.embed_detailed(dataset.graphs)
        decision = controller.step()
    share = np.mean([v == "sgcl-v2" for v in result.versions])
    print(f"canary served {100 * share:.0f}% of graphs → {decision}")

    # 5. After promotion every row is v2 — identical to serving v2 alone.
    promoted = router.embed_detailed(dataset.graphs)
    assert promoted.served_versions() == {"sgcl-v2"}
    v2 = EmbeddingService(registry.get("sgcl-v2").encoder)
    assert np.array_equal(promoted.embeddings, v2.embed(dataset.graphs))
    sample = graph_digest(dataset.graphs[0])[:12]
    print(f"promoted: digest {sample}… now serves "
          f"{promoted.versions[0]} on shard {promoted.workers[0]}")
    router.close()


if __name__ == "__main__":
    main()
