"""Visualise Lipschitz-guided augmentation on MNIST-Superpixel digits.

Run with::

    python examples/augmentation_visualization.py

Paper Figure 7: node colours reflect the Lipschitz constant; darker nodes
are more likely to survive augmentation. We render digit superpixel graphs
as ASCII intensity maps — the stroke should light up, the background noise
nodes should not — and show one positive view Ĝ and complement view Ĝ^c.
"""

from __future__ import annotations

import numpy as np

from repro.core import SGCLConfig, SGCLTrainer, lipschitz_augment
from repro.data import generate_superpixel_dataset
from repro.graph import Batch
from repro.tensor import no_grad


def ascii_map(graph, values: np.ndarray, keep: np.ndarray | None = None) -> str:
    grid = graph.meta["grid"]
    canvas = [[" " for _ in range(grid)] for _ in range(grid)]
    glyphs = " .:-=+*#%@"
    normalised = (values - values.min()) / (np.ptp(values) + 1e-12)
    for i, ((row, col), value) in enumerate(zip(graph.meta["cells"],
                                                normalised)):
        if keep is not None and not keep[i]:
            canvas[int(row)][int(col)] = "x"
        else:
            canvas[int(row)][int(col)] = glyphs[min(int(value * 9.999), 9)]
    return "\n".join("".join(line) for line in canvas)


def main() -> None:
    dataset = generate_superpixel_dataset(seed=0, per_digit=1,
                                          digits=(1, 2, 6))
    config = SGCLConfig(epochs=4, batch_size=8, seed=0,
                        lipschitz_mode="exact")
    trainer = SGCLTrainer(dataset.num_features, config)
    trainer.pretrain(dataset.graphs)

    rng = np.random.default_rng(0)
    for graph in dataset.graphs:
        with no_grad():
            scores = trainer.model.semantic_scores(Batch([graph]))
        constants = scores.constants.data
        print(f"\n=== digit {graph.y} — Lipschitz constants "
              "(dark = semantic, 'x' = dropped) ===")
        print(ascii_map(graph, constants))
        view, complement = lipschitz_augment(
            graph, scores.keep_probability, rho=0.7, rng=rng)
        kept = np.zeros(graph.num_nodes, dtype=bool)
        kept[view.meta["parent_nodes"]] = True
        print(f"--- positive view Ĝ (ρ=0.7): dropped "
              f"{graph.num_nodes - view.num_nodes} semantic-unrelated nodes ---")
        print(ascii_map(graph, constants, keep=kept))
        kept_c = np.zeros(graph.num_nodes, dtype=bool)
        kept_c[complement.meta["parent_nodes"]] = True
        print("--- complement view Ĝ^c: semantic nodes dropped instead ---")
        print(ascii_map(graph, constants, keep=kept_c))


if __name__ == "__main__":
    main()
