"""Runtime subsystem scaling — serial vs 2-worker wall time.

Measures the two fan-out paths ISSUE 3 parallelised:

* **Lipschitz precompute** — per-graph ``K_V`` under a frozen generator
  (``repro.runtime.precompute_node_constants``), exact mode so the
  per-task cost dominates process overhead.
* **Eval folds** — k-fold CV of an SVM on frozen embeddings
  (``repro.eval.cross_validated_accuracy``).

Each workload runs with ``workers=1`` and ``workers=2`` and asserts the
results stay bit-identical; wall times and speedups go to
``BENCH_runtime.json`` at the repo root (the start of the perf
trajectory) and to ``results/runtime_scaling.json``.

On single-core CI hardware a ≥1× speedup is *not* expected — two workers
time-slice one core and pay fork + pickle overhead on top. The JSON
therefore records ``cpu_count`` and a ``note`` explaining the verdict
instead of failing; on ≥2 physical cores the precompute workload should
show a real speedup.

Runnable both as a pytest bench (``pytest benchmarks/bench_runtime_scaling.py``)
and as a plain script (``python benchmarks/bench_runtime_scaling.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import LipschitzConstantGenerator
from repro.data import generate_tu_dataset
from repro.data.io import atomic_write
from repro.data.tu import TU_SPECS
from repro.eval import cross_validated_accuracy
from repro.gnn import GNNEncoder
from repro.runtime import fork_available, precompute_node_constants

_REPO_ROOT = Path(__file__).resolve().parents[1]
_WORKER_COUNTS = (1, 2)


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _bench_lipschitz_precompute(scale: float) -> dict:
    dataset = generate_tu_dataset(TU_SPECS["PROTEINS"], seed=0,
                                  scale=0.02 * scale, node_scale=2.0)
    rng = np.random.default_rng(0)
    encoder = GNNEncoder(dataset.num_features, 32, 3, rng=rng, conv="sage")
    generator = LipschitzConstantGenerator(encoder, rng=rng, mode="exact")
    row = {"workload": "lipschitz_precompute",
           "num_graphs": len(dataset.graphs)}
    baseline = None
    for workers in _WORKER_COUNTS:
        constants, seconds = _time(
            lambda w=workers: precompute_node_constants(
                generator, dataset.graphs, workers=w))
        row[f"seconds_workers_{workers}"] = round(seconds, 4)
        if baseline is None:
            baseline = constants
        else:
            assert all(np.array_equal(a, b)
                       for a, b in zip(baseline, constants)), \
                "worker count changed K_V values"
    row["speedup"] = round(row["seconds_workers_1"]
                           / row["seconds_workers_2"], 3)
    return row


def _bench_eval_folds(scale: float) -> dict:
    rng = np.random.default_rng(1)
    n = int(400 * scale)
    embeddings = rng.normal(size=(n, 64))
    labels = rng.integers(0, 3, size=n)
    row = {"workload": "eval_folds", "num_samples": n, "folds": 10}
    baseline = None
    for workers in _WORKER_COUNTS:
        score, seconds = _time(
            lambda w=workers: cross_validated_accuracy(
                embeddings, labels, k=10, classifier="svm", seed=0,
                workers=w))
        row[f"seconds_workers_{workers}"] = round(seconds, 4)
        if baseline is None:
            baseline = score
        else:
            assert score == baseline, "worker count changed eval metrics"
    row["speedup"] = round(row["seconds_workers_1"]
                           / row["seconds_workers_2"], 3)
    return row


def run_scaling_benchmark(scale: float = 1.0) -> dict:
    cpu_count = os.cpu_count() or 1
    rows = [_bench_lipschitz_precompute(scale), _bench_eval_folds(scale)]
    parallel_viable = cpu_count >= 2 and fork_available()
    if not fork_available():
        note = ("platform lacks fork: the executor fell back to serial, "
                "speedup ~1.0 by construction")
    elif cpu_count < 2:
        note = (f"only {cpu_count} CPU core(s) visible: two workers "
                "time-slice one core plus fork/pickle overhead, so no "
                "speedup is expected on this hardware; results above "
                "confirm bit-identical outputs, which is the load-bearing "
                "guarantee")
    else:
        note = "multi-core host: expect speedup > 1 on the precompute row"
    return {
        "bench": "runtime_scaling",
        "cpu_count": cpu_count,
        "fork_available": fork_available(),
        "parallel_viable": parallel_viable,
        "note": note,
        "rows": rows,
    }


def _write_payload(payload: dict) -> None:
    out = _REPO_ROOT / "BENCH_runtime.json"
    with atomic_write(out) as tmp:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    from repro.bench import save_results

    save_results("runtime_scaling", payload)


def test_runtime_scaling(benchmark, scale):
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_scaling_benchmark(scale))
    print("\n=== runtime scaling: serial vs 2 workers ===")
    for row in payload["rows"]:
        print(f"{row['workload']:>24}: "
              f"{row['seconds_workers_1']:8.3f}s → "
              f"{row['seconds_workers_2']:8.3f}s "
              f"(speedup {row['speedup']:.2f}x)")
    print(payload["note"])
    _write_payload(payload)
    if payload["parallel_viable"]:
        assert payload["rows"][0]["speedup"] > 1.0, \
            "precompute fan-out should beat serial on multi-core hardware"


if __name__ == "__main__":
    _write_payload(run_scaling_benchmark(
        float(os.environ.get("REPRO_SCALE", "1.0"))))
