"""Figure 5 — hyper-parameter sensitivity in transfer learning.

Same sweeps as Figure 4 (λ_c, λ_W, ρ, τ) but under the transfer protocol:
pretrain SGCL on ZincLike with the swept value, fine-tune on one downstream
task, report ROC-AUC.

Shape expectations: mirrors Fig. 5 — curves peak at/near the paper's chosen
values and fall off at the grid extremes.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import run_transfer, save_results
from repro.bench.specs import SENSITIVITY_GRIDS, SENSITIVITY_OPTIMA

_DOWNSTREAM = "BBBP"
_SEEDS = [0]


def test_fig5_sensitivity_transfer(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        curves = {}
        for param, grid in SENSITIVITY_GRIDS.items():
            curve = {}
            for value in grid:
                mean, _ = run_transfer(
                    "SGCL", _DOWNSTREAM, seeds=seeds, pretrain_scale=0.08,
                    downstream_scale=0.08, pretrain_epochs=2,
                    finetune_epochs=5, method_overrides={param: value})
                curve[value] = mean
            curves[param] = curve
        return curves

    curves = run_once(benchmark, run)
    print("\n=== Figure 5: sensitivity (ROC-AUC %, transfer, BBBP) ===")
    for param, curve in curves.items():
        best = max(curve, key=curve.get)
        marks = "  ".join(f"{v}:{a:5.1f}" for v, a in curve.items())
        print(f"{param:<10} {marks}   peak={best} "
              f"(paper optimum {SENSITIVITY_OPTIMA[param]})")
    save_results("fig5_sensitivity_transfer", curves)
