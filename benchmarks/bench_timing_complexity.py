"""§V timing — complexity of the Lipschitz constant generator.

The paper reports that the attention approximation reduces the generator
from O((|V||E|² + |V|)·l·B) to O((|E|² + |V|² + |V|)·l·B). We measure
wall-clock time of the exact (mask-mechanism) and approximate (attention)
modes as the graph size grows and check the scaling gap.

Shape expectations: approx mode is asymptotically much cheaper — the
exact/approx time ratio grows with |V|.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.bench import save_results
from repro.core import LipschitzConstantGenerator
from repro.data import generate_tu_dataset
from repro.data.tu import TU_SPECS
from repro.gnn import GNNEncoder
from repro.graph import Batch
from repro.tensor import no_grad

_SIZES = [0.5, 1.0, 2.0, 4.0]  # node-count multipliers of PROTEINS


def test_timing_generator_modes(benchmark, scale):
    def run():
        rows = []
        for node_scale in _SIZES:
            dataset = generate_tu_dataset(
                TU_SPECS["PROTEINS"], seed=0, scale=0.01,
                node_scale=node_scale)
            rng = np.random.default_rng(0)
            encoder = GNNEncoder(dataset.num_features, 32, 3, rng=rng,
                                 conv="sage")
            timings = {}
            for mode in ("exact", "approx"):
                generator = LipschitzConstantGenerator(encoder, rng=rng,
                                                       mode=mode)
                start = time.perf_counter()
                with no_grad():
                    for graph in dataset.graphs:
                        generator.node_constants(Batch([graph]))
                timings[mode] = time.perf_counter() - start
            avg_nodes = float(np.mean([g.num_nodes for g in dataset.graphs]))
            rows.append({"avg_nodes": avg_nodes, **timings,
                         "ratio": timings["exact"] / timings["approx"]})
        return rows

    rows = run_once(benchmark, run)
    print("\n=== §V timing: Lipschitz generator exact vs approx ===")
    print(f"{'avg |V|':>8}{'exact (s)':>12}{'approx (s)':>12}{'ratio':>8}")
    for row in rows:
        print(f"{row['avg_nodes']:8.1f}{row['exact']:12.3f}"
              f"{row['approx']:12.3f}{row['ratio']:8.1f}")
    save_results("timing_complexity", rows)
    assert rows[-1]["ratio"] > rows[0]["ratio"], \
        "exact/approx cost ratio should grow with graph size"
