"""Subgraph-sampling benchmark: sampler throughput and stream shape.

Generates a ``community-1m`` slice and measures every sampler end to end
(seeded node selection + induced-subgraph extraction), writing
``BENCH_sampling.json``:

* **sampler mix** — per-sampler nodes/sec, subgraphs/sec and the
  subgraph-size distribution (node/edge mean, min, max, p90) over the
  same seeded stream the trainer consumes;
* **stream throughput** — a full :class:`repro.sampling.SubgraphStream`
  epoch (sampling + batching + normalisation weights) in batches/sec;
* **determinism** — the whole sweep is drawn twice from the same seeds
  and the payload records (and asserts) that both passes were
  bit-identical, so the committed baseline doubles as a regression check
  on the seeding contract.

Scale the graph and sample counts with ``REPRO_SCALE``. Runnable as a
pytest bench or a plain script (``python benchmarks/bench_sampling.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.data.io import atomic_write
from repro.runtime import task_seeds
from repro.sampling import SubgraphStream, load_node_dataset, make_sampler

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SAMPLERS = ("walk", "neighbor", "edge")


def _size_distribution(sizes: list[int]) -> dict:
    arr = np.asarray(sizes, dtype=float)
    return {
        "mean": round(float(arr.mean()), 2),
        "min": int(arr.min()),
        "max": int(arr.max()),
        "p90": round(float(np.percentile(arr, 90)), 1),
    }


def _bench_sampler(name: str, dataset, num_samples: int, seed: int) -> dict:
    sampler = make_sampler(name, dataset)
    seeds = task_seeds(seed, num_samples)
    started = time.perf_counter()
    graphs = [sampler.sample(s) for s in seeds]
    elapsed = time.perf_counter() - started
    # Second pass from the same seeds: the determinism contract, measured
    # on the exact workload the committed numbers describe.
    replay = [sampler.sample(s) for s in seeds]
    identical = all(
        np.array_equal(a.meta["node_id"], b.meta["node_id"])
        and np.array_equal(a.edge_index, b.edge_index)
        for a, b in zip(graphs, replay))
    assert identical, f"{name} sampler is not seed-deterministic"
    total_nodes = sum(g.num_nodes for g in graphs)
    return {
        "sampler": name,
        "samples": num_samples,
        "seconds": round(elapsed, 4),
        "subgraphs_per_sec": round(num_samples / elapsed, 1),
        "nodes_per_sec": round(total_nodes / elapsed, 1),
        "subgraph_nodes": _size_distribution([g.num_nodes for g in graphs]),
        "subgraph_edges": _size_distribution(
            [g.num_edges // 2 for g in graphs]),
        "deterministic": identical,
    }


def _bench_stream(dataset, samples_per_epoch: int, batch_size: int) -> dict:
    stream = SubgraphStream(make_sampler("walk", dataset),
                            samples_per_epoch=samples_per_epoch,
                            batch_size=batch_size, seed=0,
                            norm_samples=min(50, samples_per_epoch))
    started = time.perf_counter()
    batches = [(batch.num_nodes, float(norms.sum()))
               for batch, norms in stream.batches(epoch=0)]
    elapsed = time.perf_counter() - started
    return {
        "samples_per_epoch": samples_per_epoch,
        "batch_size": batch_size,
        "batches": len(batches),
        "seconds": round(elapsed, 4),
        "batches_per_sec": round(len(batches) / elapsed, 2),
        "nodes_per_sec": round(sum(n for n, _ in batches) / elapsed, 1),
    }


def run_sampling_benchmark(scale: float = 1.0) -> dict:
    graph_scale = 0.02 * scale
    dataset = load_node_dataset("community-1m", seed=0, scale=graph_scale)
    num_samples = max(16, int(64 * scale))
    mix = [_bench_sampler(name, dataset, num_samples, seed=0)
           for name in _SAMPLERS]
    stream = _bench_stream(dataset, samples_per_epoch=num_samples,
                           batch_size=8)
    return {
        "bench": "sampling",
        "config": {
            "dataset": "community-1m",
            "graph_scale": graph_scale,
            "num_nodes": dataset.num_nodes,
            "num_edges": dataset.num_edges // 2,
            "samples_per_sampler": num_samples,
        },
        "cpu_count": os.cpu_count() or 1,
        "sampler_mix": mix,
        "stream": stream,
        "deterministic": all(row["deterministic"] for row in mix),
    }


def _write_payload(payload: dict) -> None:
    out = _REPO_ROOT / "BENCH_sampling.json"
    with atomic_write(out) as tmp:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    from repro.bench import save_results

    save_results("sampling", payload)


def test_sampling(benchmark, scale):
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_sampling_benchmark(scale))
    print("\n=== subgraph sampling: throughput by sampler ===")
    for row in payload["sampler_mix"]:
        nodes = row["subgraph_nodes"]
        print(f"{row['sampler']:>9}: {row['nodes_per_sec']:>10.0f} nodes/s  "
              f"{row['subgraphs_per_sec']:>7.1f} subgraphs/s  "
              f"size mean {nodes['mean']:.0f} [{nodes['min']}, "
              f"{nodes['max']}]")
    stream = payload["stream"]
    print(f"stream: {stream['batches_per_sec']:.2f} batches/s "
          f"({stream['nodes_per_sec']:.0f} nodes/s incl. normalisation)")
    assert payload["deterministic"]
    _write_payload(payload)


if __name__ == "__main__":
    _write_payload(run_sampling_benchmark(
        float(os.environ.get("REPRO_SCALE", "1.0"))))
