"""Design-choice ablations — the substrate decisions DESIGN.md §5 calls out.

Beyond the paper's own Table V ablations, this bench quantifies the three
reproduction-level design choices:

* **generator architecture** — mean-aggregating GraphSAGE (our default)
  vs the literal same-architecture GIN generator;
* **Lipschitz mode** — exact mask mechanism vs attention approximation
  (quality; the timing bench covers cost);
* **stop-gradient** (``detach_semantics``) — training f_q only through its
  graph-likelihood objective vs letting the InfoNCE gradient flow into it.

Each variant reports downstream accuracy and the semantic-identification
AUC against planted ground truth, so the bench shows *why* each default was
chosen, not just that it wins.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.bench import run_unsupervised, save_results
from repro.core import SGCLConfig, SGCLTrainer
from repro.core.analysis import semantic_identification_auc
from repro.data import load_dataset
from repro.graph import Batch

_DATASET = "PROTEINS"
_SCALE = 0.05
_EPOCHS = 4
_SEEDS = [0]

_VARIANTS: dict[str, dict] = {
    "default (sage gen, approx, detach)": {},
    "gin generator": {"generator_conv": "gin"},
    "exact lipschitz": {"lipschitz_mode": "exact"},
    "no stop-gradient": {"detach_semantics": False},
    "no generator objective": {"lambda_g": 0.0},
}


def _evaluate(overrides: dict, seeds) -> dict[str, float]:
    accs, sem_aucs = [], []
    for seed in seeds:
        accuracy, _ = run_unsupervised(
            "SGCL", _DATASET, seeds=[seed], scale=_SCALE, epochs=_EPOCHS,
            method_overrides=overrides)
        accs.append(accuracy)
        dataset = load_dataset(_DATASET, seed=seed, scale=_SCALE)
        config = SGCLConfig(epochs=_EPOCHS, batch_size=32, seed=seed,
                            **overrides)
        trainer = SGCLTrainer(dataset.num_features, config)
        trainer.pretrain(dataset.graphs)
        generator = trainer.model.generator
        sem_aucs.append(semantic_identification_auc(
            lambda g: generator.node_constants(Batch([g])).data,
            dataset.graphs, max_graphs=15))
    return {"accuracy": float(np.mean(accs)),
            "semantic_auc": float(np.mean(sem_aucs))}


def test_ablation_design_choices(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        return {name: _evaluate(overrides, seeds)
                for name, overrides in _VARIANTS.items()}

    measured = run_once(benchmark, run)
    print("\n=== Design-choice ablations (PROTEINS, unsupervised) ===")
    print(f"{'variant':<36}{'accuracy %':>12}{'semantic AUC':>14}")
    for name, row in measured.items():
        print(f"{name:<36}{row['accuracy']:>11.2f}{row['semantic_auc']:>14.3f}")
    save_results("ablation_design", measured)
    default = measured["default (sage gen, approx, detach)"]
    assert default["semantic_auc"] > 0.6, \
        "default configuration must identify planted semantic nodes"
