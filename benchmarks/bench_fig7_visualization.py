"""Figure 7 — contrastive-sample visualisation on MNIST-Superpixel digits.

For digits 1, 2 and 6 the paper colours each superpixel node by RGCL's node
probability vs SGCL's Lipschitz constant and shows that the Lipschitz
distribution tracks the digit strokes more faithfully. We reproduce the
quantitative core: for each digit graph we score every node with both
methods and report the ROC-AUC against the stroke ground truth (higher =
the score better separates stroke from background noise nodes), plus an
ASCII rendering of the score maps written to ``results/fig7_digits.txt``.

Shape expectations: SGCL's Lipschitz constants separate stroke pixels from
noise better than RGCL's learned probabilities (higher mean AUC).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.baselines import RGCL
from repro.bench import results_dir, save_results
from repro.core import SGCLConfig, SGCLTrainer
from repro.data import generate_superpixel_dataset
from repro.data.io import atomic_write
from repro.eval import roc_auc
from repro.graph import Batch
from repro.tensor import no_grad

_DIGITS = (1, 2, 6)


def _ascii_map(graph, scores: np.ndarray) -> str:
    grid = graph.meta["grid"]
    canvas = [["." for _ in range(grid)] for _ in range(grid)]
    ranks = (scores - scores.min()) / (np.ptp(scores) + 1e-12)
    glyphs = " .:-=+*#%@"
    for (row, col), value in zip(graph.meta["cells"], ranks):
        canvas[int(row)][int(col)] = glyphs[min(int(value * 9.999), 9)]
    return "\n".join("".join(line) for line in canvas)


def test_fig7_visualization(benchmark, scale):
    def run():
        dataset = generate_superpixel_dataset(seed=0, per_digit=6,
                                              digits=_DIGITS)
        graphs = dataset.graphs
        # SGCL: pretrain briefly, use the generator's Lipschitz constants.
        config = SGCLConfig(epochs=4, batch_size=16, seed=0,
                            lipschitz_mode="exact")
        sgcl = SGCLTrainer(dataset.num_features, config)
        sgcl.pretrain(graphs)
        # RGCL: pretrain briefly, use the rationale probabilities.
        rgcl = RGCL(dataset.num_features, seed=0, batch_size=16)
        rgcl.pretrain(graphs, epochs=4)
        # Two exemplars of each digit (the dataset is grouped per digit).
        per_digit = len(graphs) // len(_DIGITS)
        sample = [graphs[d * per_digit + i]
                  for d in range(len(_DIGITS)) for i in range(2)]
        records = []
        renderings = []
        with no_grad():
            for graph in sample:
                batch = Batch([graph])
                k = sgcl.model.generator.node_constants(batch).data
                p = rgcl.node_probabilities(batch).data
                truth = graph.meta["semantic_nodes"].astype(int)
                records.append({
                    "digit": graph.y,
                    "sgcl_auc": roc_auc(truth, k),
                    "rgcl_auc": roc_auc(truth, p),
                })
                renderings.append(
                    f"digit {graph.y} — SGCL Lipschitz constants\n"
                    + _ascii_map(graph, k)
                    + f"\ndigit {graph.y} — RGCL probabilities\n"
                    + _ascii_map(graph, p) + "\n")
        with atomic_write(results_dir() / "fig7_digits.txt") as tmp:
            tmp.write_text("\n".join(renderings))
        return records

    records = run_once(benchmark, run)
    sgcl_mean = float(np.mean([r["sgcl_auc"] for r in records]))
    rgcl_mean = float(np.mean([r["rgcl_auc"] for r in records]))
    print("\n=== Figure 7: stroke-identification AUC on MNIST-Superpixel ===")
    for record in records:
        print(f"digit {record['digit']}: SGCL {record['sgcl_auc']:.3f}  "
              f"RGCL {record['rgcl_auc']:.3f}")
    print(f"mean: SGCL {sgcl_mean:.3f}  RGCL {rgcl_mean:.3f} "
          "(ASCII maps → results/fig7_digits.txt)")
    save_results("fig7_visualization", {
        "records": records, "sgcl_mean": sgcl_mean, "rgcl_mean": rgcl_mean})
