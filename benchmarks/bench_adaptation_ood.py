"""Out-of-distribution generator adaptation (paper §VI.B discussion).

The paper attributes SGCL's CLINTOX degradation to a distribution gap: "the
Lipschitz constants generator trained by ZINC15 may not precisely capture
the semantic information in the CLINTOX dataset" and flags OOD
recalibration as future work. This bench implements and evaluates that
future-work direction: after pre-training on ZincLike, the generator tower
is recalibrated on the downstream graphs (``repro.core.adapt_generator``)
before fine-tuning.

Shape expectations: adaptation does not hurt on in-distribution tasks and
recovers (part of) the gap on the CLINTOX-like task.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.baselines import make_method
from repro.bench import save_results
from repro.core import adapt_generator
from repro.data import load_dataset, scaffold_split
from repro.eval import finetune_multitask, mean_std

_DATASETS = ["CLINTOX", "BBBP"]
_SEEDS = [0]
_CORPUS_SCALE = 0.12
_DOWNSTREAM_SCALE = 0.2


def _run(arm: str, seeds) -> dict[str, tuple[float, float]]:
    """One experimental arm.

    * ``zinc-only`` — pre-train on ZincLike, fine-tune directly (Table IV).
    * ``continued`` — additionally continue SGCL pre-training on the
      (unlabeled) downstream graphs with the *stale* Zinc-trained generator.
    * ``adapted`` — recalibrate the generator on the downstream graphs
      first, then continue pre-training, then fine-tune. The generator is
      what adaptation changes, and it only acts through the augmentation
      during (continued) pre-training — hence the ``continued`` control arm.
    """
    results: dict[str, list[float]] = {d: [] for d in _DATASETS}
    for seed in seeds:
        corpus = load_dataset("ZINC", seed=seed, scale=_CORPUS_SCALE)
        for dataset_name in _DATASETS:
            model = make_method("SGCL", corpus.num_features, seed=seed)
            model.pretrain(corpus.graphs, epochs=3)
            downstream = load_dataset(dataset_name, seed=seed,
                                      scale=_DOWNSTREAM_SCALE)
            if arm == "adapted":
                adapt_generator(model.model, downstream.graphs, epochs=3,
                                seed=seed)
            if arm in ("continued", "adapted"):
                model.pretrain(downstream.graphs, epochs=2)
            splits = scaffold_split(downstream)
            auc = finetune_multitask(
                model.encoder, downstream, splits, epochs=5,
                rng=np.random.default_rng(seed + 303))
            if not np.isnan(auc):
                results[dataset_name].append(auc * 100.0)
    return {d: mean_std(v) if v else (50.0, 0.0)
            for d, v in results.items()}


def test_adaptation_ood(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        return {"zinc-only": _run("zinc-only", seeds),
                "continued pretrain": _run("continued", seeds),
                "adapted + continued": _run("adapted", seeds)}

    measured = run_once(benchmark, run)
    print("\n=== OOD generator adaptation (ROC-AUC %, transfer) ===")
    print(f"{'setting':<22}" + "".join(f"{d:>14}" for d in _DATASETS))
    for setting, row in measured.items():
        cells = "".join(f"{row[d][0]:>9.1f}±{row[d][1]:<4.1f}"
                        for d in _DATASETS)
        print(f"{setting:<22}{cells}")
    save_results("adaptation_ood", measured)
