"""Serving-fleet load benchmark: latency, hit rate, shed rate, failover.

Drives a :class:`repro.fleet.FleetRouter` with a synthetic workload whose
graph popularity is zipfian (a few hot graphs, a long cold tail — the
shape real serving traffic has) and writes ``BENCH_serving.json``:

* **closed loop** — one request in flight at a time, per-request latency
  measured directly: p50/p99 and throughput for every (worker count,
  routing policy) combination in the sweep.
* **hash vs random routing** — the load-bearing comparison: under
  ``policy="hash"`` every digest has one home shard, so the fleet's
  caches partition the corpus and the fleet-wide hit rate approaches a
  single cache with N× capacity; under ``policy="random"`` the same
  replicas act as N independent LRUs that each re-embed whatever lands
  on them. The bench asserts hash routing's hit rate is **strictly
  higher** for every N >= 2.
* **open loop** — Poisson arrivals at ~2× the measured service rate;
  requests whose queueing delay blows a deadline are shed before
  dispatch, giving the shed rate under overload.
* **failover** — one of two replicas is killed mid-load; the remaining
  requests must all complete on the survivor, bit-identical to the
  single-service reference and without mixing model versions.

Scale the request volume with ``REPRO_SCALE``; with ``REPRO_LOG_DIR``
set the whole run is traced through the ambient observer
(``fleet/route`` and per-shard spans). Runnable as a pytest bench or a
plain script (``python benchmarks/bench_serving_load.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.io import atomic_write
from repro.fleet import build_fleet
from repro.gnn import GNNEncoder
from repro.graph import Graph
from repro.obs import current
from repro.serve import EmbeddingService, save_checkpoint

_REPO_ROOT = Path(__file__).resolve().parents[1]
_WORKER_COUNTS = (1, 2, 4)
_POLICIES = ("hash", "random")
_FEATURES = 6
_CACHE_PER_WORKER = 48
_BATCH_SIZE = 8
_ZIPF_EXPONENT = 1.1


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------
def _make_corpus(rng: np.random.Generator, num_graphs: int) -> list[Graph]:
    """Synthetic request corpus: small chain graphs with random features."""
    graphs = []
    for _ in range(num_graphs):
        n = int(rng.integers(4, 10))
        pairs = np.array([(i, i + 1) for i in range(n - 1)])
        edge_index = np.concatenate([pairs, pairs[:, ::-1]], axis=0).T
        graphs.append(Graph(rng.normal(size=(n, _FEATURES)), edge_index, y=0))
    return graphs


def _zipf_request_stream(rng: np.random.Generator, corpus_size: int,
                         num_requests: int, batch_size: int) -> list[np.ndarray]:
    """Batches of corpus indices drawn from a zipfian popularity curve."""
    ranks = np.arange(1, corpus_size + 1, dtype=float)
    weights = ranks ** -_ZIPF_EXPONENT
    weights /= weights.sum()
    # Decouple popularity rank from corpus order (and therefore from digest
    # space) so hot keys are spread across shards.
    popularity = rng.permutation(corpus_size)
    draws = rng.choice(corpus_size, size=num_requests * batch_size, p=weights)
    indices = popularity[draws]
    return [indices[i * batch_size:(i + 1) * batch_size]
            for i in range(num_requests)]


def _percentiles(latencies: list[float]) -> dict:
    arr = np.asarray(latencies, dtype=float)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 4),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 4),
        "mean_ms": round(float(arr.mean()) * 1e3, 4),
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def _closed_loop(router, corpus, stream, reference) -> dict:
    """One request in flight at a time; every row checked against reference."""
    latencies = []
    started = time.perf_counter()
    for batch in stream:
        graphs = [corpus[i] for i in batch]
        t0 = time.perf_counter()
        rows = router.embed(graphs)
        latencies.append(time.perf_counter() - t0)
        assert np.array_equal(rows, reference[batch]), \
            "fleet rows diverged from the single-service reference"
    elapsed = time.perf_counter() - started
    stats = router.stats()
    return {
        "mode": "closed_loop",
        "workers": stats["workers"],
        "policy": stats["policy"],
        "requests": len(stream),
        "graphs": stats["graphs"],
        **_percentiles(latencies),
        "throughput_gps": round(stats["graphs"] / elapsed, 1),
        "hit_rate": round(stats["cache"]["hit_rate"], 4),
        "cache_occupancy": round(stats["cache"]["occupancy"], 4),
        "shed_rate": 0.0,
        "failover": stats["failover"],
    }


def _open_loop(router, corpus, stream, reference, *,
               service_seconds_per_request: float) -> dict:
    """Poisson arrivals at ~2x the service rate; stale requests are shed.

    Single-threaded simulation of an open-loop generator: arrival times
    are drawn up front; a request whose queueing delay already exceeds
    the deadline when the server gets to it is shed before dispatch
    (the client has given up — embedding it would waste the budget of
    every request behind it).
    """
    rng = np.random.default_rng(7)
    mean_interarrival = service_seconds_per_request / 2.0  # ~2x overload
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=len(stream)))
    deadline = max(4.0 * service_seconds_per_request, 1e-3)
    latencies = []
    shed = 0
    started = time.perf_counter()
    for arrival, batch in zip(arrivals, stream):
        now = time.perf_counter() - started
        if now < arrival:  # idle: the generator hasn't produced it yet
            time.sleep(arrival - now)
            now = time.perf_counter() - started
        if now - arrival > deadline:
            shed += 1
            continue
        rows = router.embed([corpus[i] for i in batch])
        assert np.array_equal(rows, reference[batch])
        latencies.append((time.perf_counter() - started) - arrival)
    return {
        "mode": "open_loop",
        "workers": router.stats()["workers"],
        "policy": router.policy,
        "requests": len(stream),
        "served": len(latencies),
        "shed": shed,
        "shed_rate": round(shed / len(stream), 4),
        "deadline_ms": round(deadline * 1e3, 3),
        "offered_rps": round(1.0 / mean_interarrival, 1),
        **(_percentiles(latencies) if latencies
           else {"p50_ms": None, "p99_ms": None, "mean_ms": None}),
    }


def _failover(checkpoint, corpus, stream, reference) -> dict:
    """Kill one of two replicas mid-load; the survivor must absorb it all."""
    with build_fleet(checkpoint, 2, cache_size=_CACHE_PER_WORKER,
                     policy="hash") as router:
        half = len(stream) // 2
        versions = set()
        for batch in stream[:half]:
            result = router.embed_detailed([corpus[i] for i in batch])
            versions |= result.served_versions()
        router.worker("w0").kill()
        identical = True
        for batch in stream[half:]:
            result = router.embed_detailed([corpus[i] for i in batch])
            versions |= result.served_versions()
            identical &= bool(
                np.array_equal(result.embeddings, reference[batch]))
            assert set(result.workers) == {"w1"}, \
                "dead replica served traffic"
        stats = router.stats()
        return {
            "mode": "failover",
            "workers": 2,
            "killed": "w0",
            "requests": len(stream),
            "failover": stats["failover"],
            "bit_identical": identical,
            "versions": sorted(versions),
            "version_mixing": len(versions) > 1,
        }


# ----------------------------------------------------------------------
def run_serving_benchmark(scale: float = 1.0) -> dict:
    rng = np.random.default_rng(42)
    corpus_size = max(60, int(150 * min(scale, 4.0)))
    num_requests = max(40, int(120 * scale))
    corpus = _make_corpus(rng, corpus_size)
    stream = _zipf_request_stream(rng, corpus_size, num_requests, _BATCH_SIZE)

    tmp = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    encoder = GNNEncoder(_FEATURES, 16, 2, rng=np.random.default_rng(0))
    checkpoint = save_checkpoint(tmp / "bench.npz", encoder,
                                 metadata={"name": "bench-v1"})
    reference = EmbeddingService(
        encoder, cache_size=corpus_size).embed(corpus)

    obs = current()
    sweep = []
    hit_rates: dict[int, dict[str, float]] = {}
    with obs.span("bench/serving_sweep"):
        for workers in _WORKER_COUNTS:
            for policy in _POLICIES:
                with build_fleet(checkpoint, workers,
                                 cache_size=_CACHE_PER_WORKER,
                                 policy=policy) as router:
                    row = _closed_loop(router, corpus, stream, reference)
                sweep.append(row)
                hit_rates.setdefault(workers, {})[policy] = row["hit_rate"]

    # The tentpole claim: consistent-hash sharding beats N independent LRUs.
    for workers, rates in hit_rates.items():
        if workers >= 2:
            assert rates["hash"] > rates["random"], (
                f"hash routing must beat random at {workers} workers: "
                f"{rates['hash']:.3f} vs {rates['random']:.3f}")

    service_seconds = np.mean(
        [r["mean_ms"] for r in sweep if r["workers"] == 2
         and r["policy"] == "hash"]) * 1e-3
    with obs.span("bench/serving_open_loop"), \
            build_fleet(checkpoint, 2, cache_size=_CACHE_PER_WORKER,
                        policy="hash") as router:
        open_loop = _open_loop(router, corpus, stream, reference,
                               service_seconds_per_request=service_seconds)

    with obs.span("bench/serving_failover"):
        failover = _failover(checkpoint, corpus, stream, reference)
    assert failover["bit_identical"] and not failover["version_mixing"]

    return {
        "bench": "serving_load",
        "corpus_graphs": corpus_size,
        "requests": num_requests,
        "batch_size": _BATCH_SIZE,
        "zipf_exponent": _ZIPF_EXPONENT,
        "cache_per_worker": _CACHE_PER_WORKER,
        "cpu_count": os.cpu_count() or 1,
        "sweep": sweep,
        "hash_vs_random_hit_rate": {
            str(workers): rates for workers, rates in hit_rates.items()},
        "open_loop": open_loop,
        "failover": failover,
    }


def _write_payload(payload: dict) -> None:
    out = _REPO_ROOT / "BENCH_serving.json"
    with atomic_write(out) as tmp:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    from repro.bench import save_results

    save_results("serving_load", payload)


def test_serving_load(benchmark, scale):
    from conftest import run_once

    payload = run_once(benchmark, lambda: run_serving_benchmark(scale))
    print("\n=== serving load: latency / hit rate by worker count ===")
    for row in payload["sweep"]:
        print(f"workers={row['workers']} policy={row['policy']:>6}: "
              f"p50 {row['p50_ms']:7.2f}ms  p99 {row['p99_ms']:7.2f}ms  "
              f"{row['throughput_gps']:8.0f} graphs/s  "
              f"hit rate {row['hit_rate']:.3f}")
    ol = payload["open_loop"]
    print(f"open loop @ {ol['offered_rps']} rps: shed rate "
          f"{ol['shed_rate']:.3f} ({ol['shed']}/{ol['requests']})")
    fo = payload["failover"]
    print(f"failover: {fo['failover']} reroute(s), bit_identical="
          f"{fo['bit_identical']}, versions={fo['versions']}")
    _write_payload(payload)


if __name__ == "__main__":
    _write_payload(run_serving_benchmark(
        float(os.environ.get("REPRO_SCALE", "1.0"))))
