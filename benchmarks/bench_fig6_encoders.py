"""Figure 6 — effect of the encoder architecture (GCN/GraphSAGE/GAT/GIN).

Runs SGCL's unsupervised protocol with each of the four encoder types on
MUTAG, PROTEINS, DD and IMDB-BINARY.

Shape expectations: all four encoders are within a few points of each other
(SGCL is robust to the encoder choice) and GIN is at/near the top on
average — the paper's qualitative finding.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.bench import print_comparison_table, run_unsupervised, save_results
from repro.bench.specs import FIG6_DATASETS, FIG6_ENCODERS

_SCALES = {"MUTAG": (0.3, 1.0), "PROTEINS": (0.05, 1.0),
           "DD": (0.045, 0.12), "IMDB-B": (0.055, 1.0)}
_SEEDS = [0]
_EPOCHS = 5  # BatchNorm-heavy GIN needs a few more epochs to settle


def test_fig6_encoders(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        measured = {}
        for encoder in FIG6_ENCODERS:
            measured[encoder.upper()] = {}
            for dataset in FIG6_DATASETS:
                graph_scale, node_scale = _SCALES[dataset]
                measured[encoder.upper()][dataset] = run_unsupervised(
                    "SGCL", dataset, seeds=seeds, scale=graph_scale,
                    node_scale=node_scale, epochs=_EPOCHS,
                    method_overrides={"conv": encoder})
        return measured

    measured = run_once(benchmark, run)
    print_comparison_table(
        "Figure 6: SGCL accuracy (%) by encoder architecture",
        FIG6_DATASETS, measured, None)
    means = {enc: float(np.mean([v[0] for v in row.values()]))
             for enc, row in measured.items()}
    print("Mean per encoder:", {k: round(v, 2) for k, v in means.items()})
    save_results("fig6_encoders", measured)
