"""Table V — ablation study of SGCL's components (transfer learning).

Runs full SGCL against its five ablations (w/o VG, w/o LGA, w/o SRL,
w/o L_c, w/o L_W) on a subset of the downstream tasks and compares the mean
ROC-AUC ordering with the paper's.

Shape expectations: full SGCL ≥ every ablation on average; w/o VG (random
node dropping) is the weakest, w/o LGA (learnable view generator without
Lipschitz binarisation) sits between w/o VG and full SGCL.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.baselines import make_method
from repro.bench import save_results
from repro.bench.specs import TABLE5_METHODS, TABLE5_PAPER
from repro.data import load_dataset, scaffold_split
from repro.eval import finetune_multitask, mean_std

_SEEDS = [0]
_DATASETS = ["BBBP", "BACE", "CLINTOX"]
_PRETRAIN_EPOCHS = 3
_FINETUNE_EPOCHS = 5
_CORPUS_SCALE = 0.12
_DOWNSTREAM_SCALE = 0.2


def _run_variant(method: str, seeds) -> tuple[float, float]:
    aucs = []
    for seed in seeds:
        corpus = load_dataset("ZINC", seed=seed, scale=_CORPUS_SCALE)
        model = make_method(method, corpus.num_features, seed=seed)
        model.pretrain(corpus.graphs, epochs=_PRETRAIN_EPOCHS)
        for dataset_name in _DATASETS:
            downstream = load_dataset(dataset_name, seed=seed,
                                      scale=_DOWNSTREAM_SCALE)
            splits = scaffold_split(downstream)
            rng = np.random.default_rng(seed + 202)
            auc = finetune_multitask(model.encoder, downstream, splits,
                                     epochs=_FINETUNE_EPOCHS, rng=rng)
            if not np.isnan(auc):
                aucs.append(auc * 100.0)
    return mean_std(aucs) if aucs else (50.0, 0.0)


def test_table5_ablation(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        return {method: _run_variant(method, seeds)
                for method in TABLE5_METHODS}

    measured = run_once(benchmark, run)
    print("\n=== Table V: ablation study (mean ROC-AUC %, transfer) ===")
    print(f"{'Variant':<16}{'measured':>16}{'paper-mean':>12}")
    for method in TABLE5_METHODS:
        mean, std = measured[method]
        print(f"{method:<16}{mean:10.2f}±{std:4.2f}"
              f"{TABLE5_PAPER[method]:12.1f}")
    save_results("table5_ablation", measured)
    benchmark.extra_info["full_minus_woVG"] = (
        measured["SGCL"][0] - measured["SGCL w/o VG"][0])
