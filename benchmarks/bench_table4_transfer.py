"""Table IV — transfer learning ROC-AUC on MoleculeNet-style tasks.

Each method pre-trains once on the ZincLike corpus, then the same encoder is
fine-tuned (scaffold split) on all eight downstream multi-task datasets —
matching the paper's protocol where one Zinc-2M backbone serves every task.

Shape expectations: every pre-training method beats No-Pre-Train on
average; SGCL's average rank is best or near-best.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.baselines import make_method
from repro.bench import print_comparison_table, save_results
from repro.bench.specs import TABLE4_DATASETS, TABLE4_METHODS, TABLE4_PAPER
from repro.data import load_dataset, scaffold_split
from repro.eval import finetune_multitask, mean_std

_SEEDS = [0]
_PRETRAIN_EPOCHS = 3
_FINETUNE_EPOCHS = 5
_CORPUS_SCALE = 0.12       # 240 ZincLike molecules
_DOWNSTREAM_SCALE = 0.2


def _run_method(method: str, seeds) -> dict[str, tuple[float, float]]:
    per_dataset: dict[str, list[float]] = {d: [] for d in TABLE4_DATASETS}
    for seed in seeds:
        corpus = load_dataset("ZINC", seed=seed, scale=_CORPUS_SCALE)
        model = make_method(method, corpus.num_features, seed=seed)
        model.pretrain(corpus.graphs, epochs=_PRETRAIN_EPOCHS)
        for dataset_name in TABLE4_DATASETS:
            downstream = load_dataset(dataset_name, seed=seed,
                                      scale=_DOWNSTREAM_SCALE)
            splits = scaffold_split(downstream)
            rng = np.random.default_rng(seed + 101)
            auc = finetune_multitask(model.encoder, downstream, splits,
                                     epochs=_FINETUNE_EPOCHS, rng=rng)
            if not np.isnan(auc):
                per_dataset[dataset_name].append(auc * 100.0)
    return {d: mean_std(v) if v else (50.0, 0.0)
            for d, v in per_dataset.items()}


def test_table4_transfer(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        return {method: _run_method(method, seeds)
                for method in TABLE4_METHODS}

    measured = run_once(benchmark, run)
    print_comparison_table("Table IV: transfer learning ROC-AUC (%)",
                           TABLE4_DATASETS, measured, TABLE4_PAPER)
    save_results("table4_transfer", measured)
    means = {m: float(np.nanmean([v[0] for v in row.values()]))
             for m, row in measured.items()}
    benchmark.extra_info["mean_auc"] = means
