"""Figure 4 — hyper-parameter sensitivity in unsupervised learning.

Sweeps λ_c, λ_W, ρ and τ over the paper's §VI.A.3 search grids and reports
the mean accuracy over (scaled-down) PROTEINS, DD and IMDB-B — the same
averaging the figure uses.

Shape expectations: each curve is unimodal-ish with its peak at or adjacent
to the paper's chosen value (λ_c=0.01, λ_W=0.01, ρ=0.9, τ=0.2); extreme
values (λ_c=0.1, τ=0.5, τ=0.1) underperform the optimum.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.bench import run_unsupervised, save_results
from repro.bench.specs import SENSITIVITY_GRIDS, SENSITIVITY_OPTIMA

_DATASETS = {"PROTEINS": (0.035, 1.0), "DD": (0.035, 0.12),
             "IMDB-B": (0.04, 1.0)}
_SEEDS = [0]
_EPOCHS = 3


def _sweep(param: str, values, seeds) -> dict[float, float]:
    curve = {}
    for value in values:
        scores = []
        for dataset, (graph_scale, node_scale) in _DATASETS.items():
            mean, _ = run_unsupervised(
                "SGCL", dataset, seeds=seeds, scale=graph_scale,
                node_scale=node_scale, epochs=_EPOCHS,
                method_overrides={param: value})
            scores.append(mean)
        curve[value] = float(np.mean(scores))
    return curve


def test_fig4_sensitivity_unsupervised(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        return {param: _sweep(param, grid, seeds)
                for param, grid in SENSITIVITY_GRIDS.items()}

    curves = run_once(benchmark, run)
    print("\n=== Figure 4: sensitivity (mean accuracy %, unsupervised) ===")
    for param, curve in curves.items():
        best = max(curve, key=curve.get)
        marks = "  ".join(f"{v}:{a:5.1f}" for v, a in curve.items())
        print(f"{param:<10} {marks}   peak={best} "
              f"(paper optimum {SENSITIVITY_OPTIMA[param]})")
    save_results("fig4_sensitivity_unsupervised", curves)
