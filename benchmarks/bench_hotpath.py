"""Hot-path baseline — where a seeded SGCL pretrain slice spends its time.

Runs the exact workload ``repro profile`` measures
(:func:`repro.obs.profile_run.profile_pretrain` — same dataset slice,
same config, same seeds) under the op profiler and writes the hot-path
payload to ``BENCH_hotpath.json`` at the repo root. That file is the
committed baseline the CLI's perf-regression gate compares against::

    python -m repro profile --compare BENCH_hotpath.json

The gate never compares absolute times across machines; it checks the
machine-independent invariants of the payload — deterministic op *call
counts* (seeded run ⇒ fixed computation graph), each op's *share* of
total self time (±0.10 absolute), and runtime-normalised per-call cost
(≤3×). See :func:`repro.obs.profiler.compare_hotpaths`.

Note the config block: the gate refuses to compare payloads recorded
with different workloads, so regenerate the baseline (``python
benchmarks/bench_hotpath.py``) whenever the profiled slice or the
model's op mix changes *intentionally*.

Runnable both as a pytest bench (``pytest benchmarks/bench_hotpath.py``)
and as a plain script (``python benchmarks/bench_hotpath.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.data.io import atomic_write
from repro.obs.profile_run import profile_pretrain
from repro.obs.profiler import compare_hotpaths

_REPO_ROOT = Path(__file__).resolve().parents[1]

# Keep these in lockstep with the `repro profile` CLI defaults: the
# committed baseline must describe the workload the gate re-runs in CI.
_PROFILE_KWARGS = dict(scale=0.1, epochs=2, batch_size=32, seed=0,
                       max_graphs=64)


def run_hotpath_benchmark() -> dict:
    _, _, payload = profile_pretrain("MUTAG", **_PROFILE_KWARGS)
    return {
        "bench": "hotpath",
        "cpu_count": os.cpu_count() or 1,
        "note": ("op-level profile of a seeded 2-epoch SGCL pretrain on "
                 "MUTAG@0.1 (64 graphs); call counts are deterministic, "
                 "times are this machine's — the compare gate only uses "
                 "machine-independent ratios"),
        **payload,
    }


def _write_payload(payload: dict) -> None:
    out = _REPO_ROOT / "BENCH_hotpath.json"
    with atomic_write(out) as tmp:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    from repro.bench import save_results

    save_results("hotpath", payload)


def test_hotpath_baseline(benchmark):
    from conftest import run_once

    payload = run_once(benchmark, run_hotpath_benchmark)
    print("\n=== hot path: seeded SGCL pretrain slice ===")
    for row in payload["rows"][:10]:
        print(f"{row['span'][-48:]:>48} {row['op']:<16} "
              f"×{row['calls']:<6} {row['self_s'] * 1e3:8.2f}ms "
              f"({row['self_share']:.1%})")
    print(f"wall {payload['wall_seconds'] * 1e3:.1f}ms, "
          f"{payload['attributed_fraction']:.1%} attributed")
    # The acceptance bar of the profiler itself: ≥90% of wall time lands
    # in op×span rows (ops + per-span glue residuals).
    assert payload["attributed_fraction"] >= 0.90
    # A payload must gate cleanly against itself.
    assert compare_hotpaths(payload, payload) == []
    _write_payload(payload)


if __name__ == "__main__":
    _write_payload(run_hotpath_benchmark())
