"""Shared benchmark configuration.

Workload sizes are deliberately small (synthetic data, few epochs) so the
whole suite finishes on a laptop CPU; scale them with ``REPRO_SCALE``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.specs import bench_scale


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(autouse=True)
def _deterministic_numpy():
    """Fail fast on accidental use of the global RNG inside benches."""
    state = np.random.get_state()
    yield
    np.random.set_state(state)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
