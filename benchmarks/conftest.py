"""Shared benchmark configuration.

Workload sizes are deliberately small (synthetic data, few epochs) so the
whole suite finishes on a laptop CPU; scale them with ``REPRO_SCALE``.

Set ``REPRO_LOG_DIR`` to a directory to capture per-bench observability:
every bench then runs under an active :class:`repro.obs.Observer` writing
``<bench-name>.jsonl`` (epoch events, eval events and a final span-tree
``trace`` event) — render one with ``python -m repro report <file>``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench.specs import bench_scale
from repro.obs import JSONLSink, Observer


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(autouse=True)
def _observability(request):
    """Trace each bench into $REPRO_LOG_DIR/<test-name>.jsonl if set."""
    log_dir = os.environ.get("REPRO_LOG_DIR")
    if not log_dir:
        yield
        return
    path = Path(log_dir) / f"{request.node.name}.jsonl"
    observer = Observer(sinks=[JSONLSink(path)])
    with observer.activate():
        observer.event("run_start", bench=request.node.name)
        yield
        observer.emit_trace()
        observer.event("run_end", bench=request.node.name)
    observer.close()


@pytest.fixture(autouse=True)
def _deterministic_numpy():
    """Fail fast on accidental use of the global RNG inside benches."""
    state = np.random.get_state()
    yield
    np.random.set_state(state)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
