"""Table III — unsupervised graph classification accuracy on TU datasets.

Reproduces the paper's headline comparison: 3 graph kernels + 8
self-supervised methods, evaluated by the pretrain → embed → k-fold-CV
protocol on all eight (synthetic) TU datasets. Prints measured accuracy
next to the paper's numbers with average ranks.

Shape expectations (EXPERIMENTS.md): SGCL's average rank is the best or
near-best; learnable-view methods (RGCL/AutoGCL) and SGCL beat the random
augmentation of GraphCL on average; kernels trail the neural methods.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import (
    print_comparison_table,
    run_kernel_unsupervised,
    run_unsupervised,
    save_results,
)
from repro.bench.specs import TABLE3_DATASETS, TABLE3_METHODS, TABLE3_PAPER

# Per-dataset workload knobs: (graph-count scale, node-count scale). The big
# TU datasets (DD: 284 avg nodes, RDT-B/RDT-M-5K: ~500) are shrunk in both
# axes; statistics stay proportional.
_DATASET_SCALES: dict[str, tuple[float, float]] = {
    "MUTAG": (0.35, 1.0),
    "DD": (0.055, 0.12),
    "PROTEINS": (0.06, 1.0),
    "NCI1": (0.016, 1.0),
    "COLLAB": (0.013, 0.5),
    "RDT-B": (0.033, 0.08),
    "RDT-M-5K": (0.016, 0.08),
    "IMDB-B": (0.065, 1.0),
}

_KERNELS = ("GL", "WL", "DGK")
_SEEDS = [0]
_EPOCHS = 3


def test_table3_unsupervised(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        measured: dict[str, dict[str, tuple[float, float]]] = {}
        for method in TABLE3_METHODS:
            measured[method] = {}
            for dataset in TABLE3_DATASETS:
                graph_scale, node_scale = _DATASET_SCALES[dataset]
                if method in _KERNELS:
                    cell = run_kernel_unsupervised(
                        method, dataset, seeds=seeds, scale=graph_scale,
                        node_scale=node_scale)
                else:
                    cell = run_unsupervised(
                        method, dataset, seeds=seeds, scale=graph_scale,
                        node_scale=node_scale, epochs=_EPOCHS)
                measured[method][dataset] = cell
        return measured

    measured = run_once(benchmark, run)
    print_comparison_table("Table III: unsupervised accuracy (%)",
                           TABLE3_DATASETS, measured, TABLE3_PAPER)
    save_results("table3_unsupervised", measured)
    benchmark.extra_info["sgcl_mutag"] = measured["SGCL"]["MUTAG"][0]
