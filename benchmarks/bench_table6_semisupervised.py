"""Table VI — semi-supervised accuracy at 1 % / 10 % label rates.

Pre-train on unlabeled NCI1/COLLAB, fine-tune encoder + classifier head on
a stratified 1 % or 10 % labelled subset, evaluate on a held-out 20 % test
split.

Shape expectations: every pre-training method beats No-pre-train; SGCL is
at/near the top in the 1 % setting; the 10 % setting compresses the gaps
(all methods close), as in the paper.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench import print_comparison_table, run_semisupervised, save_results
from repro.bench.specs import TABLE6_PAPER

_METHODS = ["No Pre-Train", "GAE", "Infomax", "GraphCL", "JOAOv2",
            "SimGRACE", "AutoGCL", "SGCL"]
_PAPER_NAMES = {"No Pre-Train": "No pre-train"}  # row-name mapping
_SETTINGS = [("NCI1", 0.01, "NCI1(1%)"), ("COLLAB", 0.01, "COLLAB(1%)"),
             ("NCI1", 0.10, "NCI1(10%)"), ("COLLAB", 0.10, "COLLAB(10%)")]
_SCALES = {"NCI1": (0.035, 1.0), "COLLAB": (0.022, 0.4)}
_SEEDS = [0]


def test_table6_semisupervised(benchmark, scale):
    seeds = _SEEDS * max(1, int(scale))

    def run():
        measured = {}
        for method in _METHODS:
            measured[method] = {}
            for dataset, rate, column in _SETTINGS:
                graph_scale, node_scale = _SCALES[dataset]
                measured[method][column] = run_semisupervised(
                    method, dataset, rate, seeds=seeds, scale=graph_scale,
                    node_scale=node_scale, pretrain_epochs=3,
                    finetune_epochs=6)
        return measured

    measured = run_once(benchmark, run)
    columns = [c for _, _, c in _SETTINGS]
    paper = {m: TABLE6_PAPER[_PAPER_NAMES.get(m, m)] for m in _METHODS}
    print_comparison_table("Table VI: semi-supervised accuracy (%)",
                           columns, measured, paper)
    save_results("table6_semisupervised", measured)
